"""Multi-host socket backend: binary KV protocol, ring placement, failover.

One :class:`DHTNodeServer` is one storage node — a threaded TCP server
over an in-memory byte map, speaking a length-prefixed binary protocol
(one op byte, a little-endian u32 payload length, then the payload; the
response mirrors it with a status byte).  ``python -m repro dht-server``
runs one as a standalone process.

:class:`SocketBackingStore` is the client: keys place onto nodes by
**consistent hashing** (each node projected onto the ring at
``VNODES`` points via :func:`~repro.ampc.hashing.stable_hash`, a key
served by the first ``replication`` distinct nodes clockwise of its hash),
connections are **pooled** per node and reused across requests, transient
failures **retry with exponential backoff**, and reads **fail over** to
the next replica when a node is unreachable — a killed node mid-query
costs a reconnect, not the query, as long as one replica survives.

Writes go to every replica that is reachable; a write that reaches no
replica raises.  A node that rejoins empty serves misses for keys it
missed writes for — replicas exist for availability, not consistency
repair (matching the sealed/immutable store discipline: shared records
are written once, before readers arrive).
"""

from __future__ import annotations

import json
import random
import socket
import socketserver
import struct
import threading
import time
from bisect import bisect_right
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.ampc.hashing import stable_hash
from repro.distdht.backing import BackingStore, register_fetcher
from repro.distdht.chaos import BlackholeError, ChaosInjector

# -- wire format ------------------------------------------------------------

_HEADER = struct.Struct("<BI")   # (op | status, payload length)
_U32 = struct.Struct("<I")

OP_PUT = 1
OP_GET = 2
OP_DELETE = 3
OP_CONTAINS = 4
OP_SCAN = 5
OP_DELETE_PREFIX = 6
OP_MPUT = 7
OP_MGET = 8
OP_PING = 9
OP_STATS = 10

STATUS_OK = 0
STATUS_MISSING = 1
STATUS_ERROR = 2

#: virtual nodes per physical node on the consistent-hash ring
VNODES = 64

#: ceiling on a single retry backoff sleep, whatever the attempt count
DEFAULT_MAX_BACKOFF_S = 2.0


def _recv_exact(sock: socket.socket, length: int) -> bytes:
    chunks = []
    remaining = length
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError("peer closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _send_frame(sock: socket.socket, tag: int, payload: bytes) -> None:
    sock.sendall(_HEADER.pack(tag, len(payload)) + payload)


def _recv_frame(sock: socket.socket) -> Tuple[int, bytes]:
    header = _recv_exact(sock, _HEADER.size)
    tag, length = _HEADER.unpack(header)
    return tag, _recv_exact(sock, length) if length else b""


def _pack_chunks(chunks: Sequence[bytes]) -> bytes:
    parts = [_U32.pack(len(chunks))]
    for chunk in chunks:
        parts.append(_U32.pack(len(chunk)))
        parts.append(chunk)
    return b"".join(parts)


def _unpack_chunks(payload: bytes) -> List[bytes]:
    count = _U32.unpack_from(payload, 0)[0]
    chunks = []
    offset = _U32.size
    for _ in range(count):
        length = _U32.unpack_from(payload, offset)[0]
        offset += _U32.size
        chunks.append(payload[offset:offset + length])
        offset += length
    return chunks


# -- server -----------------------------------------------------------------


class _NodeHandler(socketserver.BaseRequestHandler):
    def handle(self) -> None:  # one connection, many requests
        self.request.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        data = self.server.data
        lock = self.server.data_lock
        while True:
            try:
                op, payload = _recv_frame(self.request)
            except (ConnectionError, OSError):
                return
            try:
                chaos = getattr(self.server, "chaos", None)
                if chaos is not None:
                    chaos.before_request()
                status, reply = self._dispatch(op, payload, data, lock)
            except BlackholeError:
                # Drop the request unanswered and kill the connection:
                # the client sees a reset mid-frame, like a half-dead
                # node that still accepts connects but never replies.
                try:
                    self.request.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                return
            except Exception as error:  # noqa: BLE001 - report, stay up
                status, reply = STATUS_ERROR, str(error).encode("utf-8")
            try:
                _send_frame(self.request, status, reply)
            except OSError:
                return

    @staticmethod
    def _dispatch(op: int, payload: bytes, data: Dict[bytes, bytes],
                  lock: threading.Lock) -> Tuple[int, bytes]:
        if op == OP_PUT:
            klen = _U32.unpack_from(payload, 0)[0]
            key = payload[_U32.size:_U32.size + klen]
            value = payload[_U32.size + klen:]
            with lock:
                data[key] = value
            return STATUS_OK, b""
        if op == OP_GET:
            with lock:
                value = data.get(payload)
            if value is None:
                return STATUS_MISSING, b""
            return STATUS_OK, value
        if op == OP_DELETE:
            with lock:
                found = data.pop(payload, None) is not None
            return STATUS_OK, b"\x01" if found else b"\x00"
        if op == OP_CONTAINS:
            with lock:
                found = payload in data
            return STATUS_OK, b"\x01" if found else b"\x00"
        if op == OP_SCAN:
            with lock:
                keys = [key for key in data if key.startswith(payload)]
            return STATUS_OK, _pack_chunks(keys)
        if op == OP_DELETE_PREFIX:
            with lock:
                doomed = [key for key in data if key.startswith(payload)]
                for key in doomed:
                    del data[key]
            return STATUS_OK, _U32.pack(len(doomed))
        if op == OP_MPUT:
            items = _unpack_chunks(payload)
            with lock:
                for index in range(0, len(items), 2):
                    data[items[index]] = items[index + 1]
            return STATUS_OK, b""
        if op == OP_MGET:
            keys = _unpack_chunks(payload)
            with lock:
                found = [data.get(key) for key in keys]
            return STATUS_OK, _pack_chunks(
                [b"" if value is None else b"\x01" + value
                 for value in found])
        if op == OP_PING:
            return STATUS_OK, b"pong"
        if op == OP_STATS:
            with lock:
                stats = {
                    "entries": len(data),
                    "payload_bytes": sum(len(v) for v in data.values()),
                }
            return STATUS_OK, json.dumps(stats).encode("utf-8")
        return STATUS_ERROR, f"unknown op {op}".encode("utf-8")


class _NodeServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._open_requests = set()
        self._open_lock = threading.Lock()
        #: optional ChaosInjector consulted per request (None = inert)
        self.chaos: Optional[ChaosInjector] = None

    def process_request(self, request, client_address):
        with self._open_lock:
            self._open_requests.add(request)
        super().process_request(request, client_address)

    def shutdown_request(self, request):
        with self._open_lock:
            self._open_requests.discard(request)
        super().shutdown_request(request)

    def sever_connections(self) -> None:
        """Hard-close every live connection (what a real kill does).

        Without this an in-process close() would leave established
        handler threads happily serving pooled client connections, and
        'kill a node' tests would not actually kill anything.
        """
        with self._open_lock:
            requests = list(self._open_requests)
        for request in requests:
            try:
                request.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass


class DHTNodeServer:
    """One standalone DHT storage node (``python -m repro dht-server``)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0):
        self._server = _NodeServer((host, port), _NodeHandler)
        self._server.data = {}
        self._server.data_lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._server.server_address[:2]
        return host, port

    @property
    def chaos(self) -> Optional[ChaosInjector]:
        """The active fault injector, or None when the node is clean."""
        return self._server.chaos

    def inject_chaos(self, *, latency_s: Optional[float] = None,
                     error_rate: Optional[float] = None,
                     blackhole: Optional[bool] = None,
                     seed: int = 0) -> ChaosInjector:
        """Arm (or reconfigure) fault injection on this live node.

        See :class:`~repro.distdht.chaos.ChaosInjector` for the knobs.
        Safe while serving; returns the injector for introspection.
        """
        injector = self._server.chaos
        if injector is None:
            injector = ChaosInjector(seed=seed)
            self._server.chaos = injector
        injector.configure(latency_s=latency_s, error_rate=error_rate,
                           blackhole=blackhole)
        return injector

    def heal(self) -> None:
        """Clear all injected faults; the node serves cleanly again."""
        injector = self._server.chaos
        if injector is not None:
            injector.heal()

    def sever_connections(self) -> None:
        """Hard-close every live connection without stopping the node.

        Chaos-harness sibling of :meth:`inject_chaos`: every pooled
        client connection dies at once (as on a node restart), but the
        listener keeps accepting, so clients reconnect and recover.
        """
        self._server.sever_connections()

    def start(self) -> "DHTNodeServer":
        """Serve on a background thread (tests / embedded use)."""
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name=f"repro-dht-node-{self.address[1]}", daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI entry point)."""
        self._server.serve_forever()

    def close(self) -> None:
        self._server.shutdown()
        self._server.sever_connections()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(5.0)

    def __enter__(self) -> "DHTNodeServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# -- client -----------------------------------------------------------------


class _NodeClient:
    """Pooled connections to one node, with retry and backoff.

    Backoff is exponential with **full jitter** and a ceiling: attempt
    ``i`` sleeps ``uniform(0, min(max_backoff_s, backoff_s * 2**i))``.
    Without the jitter every pooled client of a restarted node retries in
    lockstep and reconnects stampede the node; the cap keeps large retry
    budgets from sleeping for minutes.  ``rng`` is any object with a
    ``uniform(a, b)`` method — tests pass a seeded :class:`random.Random`
    to make the schedule deterministic.
    """

    def __init__(self, host: str, port: int, *, timeout: float,
                 retries: int, backoff_s: float, pool_size: int,
                 max_backoff_s: float = DEFAULT_MAX_BACKOFF_S,
                 rng: Optional[random.Random] = None):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff_s = backoff_s
        self.max_backoff_s = max_backoff_s
        self.pool_size = pool_size
        self._rng = rng if rng is not None else random.Random()
        self._pool: List[socket.socket] = []
        self._lock = threading.Lock()

    def _backoff_delay(self, attempt: int) -> float:
        """The jittered sleep before retry ``attempt + 1``."""
        ceiling = min(self.max_backoff_s, self.backoff_s * (2 ** attempt))
        return self._rng.uniform(0.0, ceiling)

    def _connect(self) -> socket.socket:
        sock = socket.create_connection((self.host, self.port),
                                        timeout=self.timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def _checkout(self) -> Optional[socket.socket]:
        with self._lock:
            if self._pool:
                return self._pool.pop()
        return None

    def _checkin(self, sock: socket.socket) -> None:
        with self._lock:
            if len(self._pool) < self.pool_size:
                self._pool.append(sock)
                return
        try:
            sock.close()
        except OSError:
            pass

    def request(self, op: int, payload: bytes) -> Tuple[int, bytes]:
        """One request/response round trip; retries transient failures.

        A pooled connection that fails is dropped and replaced; after
        ``retries`` fresh-connection failures the ConnectionError
        propagates (the caller's replica failover takes it from there).
        """
        last_error: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            sock = self._checkout()
            fresh = sock is None
            try:
                if sock is None:
                    sock = self._connect()
                _send_frame(sock, op, payload)
                status, reply = _recv_frame(sock)
            except (OSError, ConnectionError) as error:
                last_error = error
                if sock is not None:
                    try:
                        sock.close()
                    except OSError:
                        pass
                # A dirty pooled socket (server restarted between
                # requests) deserves an immediate fresh-connection try;
                # fresh-connection failures back off before retrying.
                if fresh and attempt < self.retries:
                    time.sleep(self._backoff_delay(attempt))
                continue
            self._checkin(sock)
            if status == STATUS_ERROR:
                raise RuntimeError(
                    f"dht node {self.host}:{self.port}: "
                    f"{reply.decode('utf-8', 'replace')}")
            return status, reply
        raise ConnectionError(
            f"dht node {self.host}:{self.port} unreachable: {last_error}")

    def close(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, []
        for sock in pool:
            try:
                sock.close()
            except OSError:
                pass


def _fetch_dht(locator) -> bytes:
    """Resolve a ``("dht", ((host, port), ...), key)`` locator.

    Tries each replica in placement order over a transient connection;
    the record must exist on some reachable replica.
    """
    _tag, nodes, key = locator
    last_error: Optional[Exception] = None
    for host, port in nodes:
        client = _NodeClient(host, port, timeout=10.0, retries=1,
                             backoff_s=0.05, pool_size=0)
        try:
            status, reply = client.request(OP_GET, key)
        except ConnectionError as error:
            last_error = error
            continue
        finally:
            client.close()
        if status == STATUS_OK:
            return reply
        last_error = KeyError(f"record {key!r} missing on {host}:{port}")
    raise last_error if last_error is not None else KeyError(key)


register_fetcher("dht", _fetch_dht)


class SocketBackingStore(BackingStore):
    """Client-side view of a DHT node cluster.

    ``nodes`` is a non-empty list of ``(host, port)`` pairs (or
    ``"host:port"`` strings).  ``replication`` copies each record onto
    that many distinct ring-successive nodes; any reachable replica
    serves reads, which is what lets a query survive a killed node.
    """

    kind = "socket"
    remote = True

    def __init__(self, nodes: Sequence[Any], *, replication: int = 1,
                 timeout: float = 10.0, retries: int = 2,
                 backoff_s: float = 0.05, pool_size: int = 2,
                 max_backoff_s: float = DEFAULT_MAX_BACKOFF_S,
                 backoff_rng: Optional[random.Random] = None):
        if not nodes:
            raise ValueError("need at least one dht node")
        parsed = []
        for node in nodes:
            if isinstance(node, str):
                host, _, port = node.rpartition(":")
                parsed.append((host or "127.0.0.1", int(port)))
            else:
                parsed.append((str(node[0]), int(node[1])))
        if replication < 1:
            raise ValueError("replication must be >= 1")
        self.nodes: List[Tuple[str, int]] = parsed
        self.replication = min(replication, len(parsed))
        self._clients = [
            _NodeClient(host, port, timeout=timeout, retries=retries,
                        backoff_s=backoff_s, pool_size=pool_size,
                        max_backoff_s=max_backoff_s, rng=backoff_rng)
            for host, port in parsed
        ]
        # Consistent-hash ring: VNODES points per node, stable across
        # processes (stable_hash), so every client and every locator
        # agrees on placement without coordination.
        ring: List[Tuple[int, int]] = []
        for index, (host, port) in enumerate(parsed):
            for vnode in range(VNODES):
                ring.append((stable_hash(f"{host}:{port}#{vnode}"), index))
        ring.sort()
        self._ring = ring
        self._ring_hashes = [point[0] for point in ring]

    # -- placement --------------------------------------------------------

    def replicas_for(self, key: bytes) -> List[int]:
        """Node indexes serving ``key``, primary first (ring walk)."""
        position = bisect_right(self._ring_hashes, stable_hash(key))
        replicas: List[int] = []
        for step in range(len(self._ring)):
            index = self._ring[(position + step) % len(self._ring)][1]
            if index not in replicas:
                replicas.append(index)
                if len(replicas) == self.replication:
                    break
        return replicas

    # -- BackingStore -----------------------------------------------------

    def put(self, key: bytes, record: bytes) -> None:
        payload = _U32.pack(len(key)) + key + record
        reached = 0
        last_error: Optional[Exception] = None
        for index in self.replicas_for(key):
            try:
                self._clients[index].request(OP_PUT, payload)
                reached += 1
            except ConnectionError as error:
                last_error = error  # a dead replica loses the copy
        if not reached:
            raise ConnectionError(
                f"no replica reachable for write: {last_error}")

    def put_many(self, items: Sequence[Tuple[bytes, bytes]]) -> None:
        """Group items by replica node: one MPUT round trip per node."""
        per_node: Dict[int, List[bytes]] = {}
        for key, record in items:
            for index in self.replicas_for(key):
                per_node.setdefault(index, []).extend((key, record))
        reached = 0
        last_error: Optional[Exception] = None
        for index, chunks in per_node.items():
            try:
                self._clients[index].request(OP_MPUT, _pack_chunks(chunks))
                reached += 1
            except ConnectionError as error:
                last_error = error
        if per_node and not reached:
            raise ConnectionError(
                f"no replica reachable for batch write: {last_error}")

    def get(self, key: bytes) -> Optional[bytes]:
        last_error: Optional[Exception] = None
        for index in self.replicas_for(key):
            try:
                status, reply = self._clients[index].request(OP_GET, key)
            except ConnectionError as error:
                last_error = error
                continue  # read failover: next replica
            return reply if status == STATUS_OK else None
        raise ConnectionError(
            f"every replica unreachable for read: {last_error}")

    def get_many(self, keys: Sequence[bytes]) -> List[Optional[bytes]]:
        """Group keys by primary node: one MGET per node, with failover.

        Keys whose primary is down are retried individually through
        :meth:`get` (which walks the replicas).
        """
        per_node: Dict[int, List[int]] = {}
        for position, key in enumerate(keys):
            primary = self.replicas_for(key)[0]
            per_node.setdefault(primary, []).append(position)
        results: List[Optional[bytes]] = [None] * len(keys)
        for index, positions in per_node.items():
            try:
                _status, reply = self._clients[index].request(
                    OP_MGET, _pack_chunks([keys[p] for p in positions]))
            except ConnectionError:
                for position in positions:
                    results[position] = self.get(keys[position])
                continue
            for position, chunk in zip(positions, _unpack_chunks(reply)):
                results[position] = chunk[1:] if chunk else None
        return results

    def contains(self, key: bytes) -> bool:
        last_error: Optional[Exception] = None
        for index in self.replicas_for(key):
            try:
                _status, reply = self._clients[index].request(
                    OP_CONTAINS, key)
            except ConnectionError as error:
                last_error = error
                continue
            return reply == b"\x01"
        raise ConnectionError(
            f"every replica unreachable for contains: {last_error}")

    def delete(self, key: bytes) -> bool:
        found = False
        reached = 0
        for index in self.replicas_for(key):
            try:
                _status, reply = self._clients[index].request(OP_DELETE, key)
                reached += 1
                found = found or reply == b"\x01"
            except ConnectionError:
                continue
        if not reached:
            raise ConnectionError("every replica unreachable for delete")
        return found

    def scan(self, prefix: bytes) -> List[bytes]:
        seen = set()
        reached = 0
        for client in self._clients:
            try:
                _status, reply = client.request(OP_SCAN, prefix)
                reached += 1
            except ConnectionError:
                continue
            seen.update(_unpack_chunks(reply))
        if not reached:
            raise ConnectionError("every node unreachable for scan")
        return list(seen)

    def delete_prefix(self, prefix: bytes) -> int:
        dropped = 0
        for client in self._clients:
            try:
                _status, reply = client.request(OP_DELETE_PREFIX, prefix)
                dropped = max(dropped, _U32.unpack(reply)[0])
            except ConnectionError:
                continue
        return dropped

    def share(self, key: bytes) -> Tuple[str, Tuple, bytes]:
        """-> ``("dht", replica (host, port) pairs, key)``.

        Self-contained: the fetching process connects straight to the
        replicas, so a locator survives the sharing store being closed —
        and a dead primary, thanks to the replica walk in the fetcher.
        """
        replicas = tuple(self.nodes[index]
                         for index in self.replicas_for(key))
        return ("dht", replicas, key)

    def ping(self) -> List[bool]:
        """Liveness of each node, index-aligned with ``nodes``."""
        alive = []
        for client in self._clients:
            try:
                client.request(OP_PING, b"")
                alive.append(True)
            except ConnectionError:
                alive.append(False)
        return alive

    def close(self) -> None:
        for client in self._clients:
            client.close()

    def stats(self) -> Dict[str, Any]:
        per_node = []
        for client in self._clients:
            try:
                _status, reply = client.request(OP_STATS, b"")
                per_node.append(json.loads(reply.decode("utf-8")))
            except ConnectionError:
                per_node.append(None)
        return {
            "kind": self.kind,
            "remote": self.remote,
            "nodes": [f"{host}:{port}" for host, port in self.nodes],
            "replication": self.replication,
            "per_node": per_node,
        }
