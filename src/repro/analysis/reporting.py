"""Plain-text tables in the spirit of the paper's tables and figures.

Benchmarks print these so that a single ``pytest benchmarks/`` run shows,
for every experiment, the paper's numbers next to the measured ones.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Union

Cell = Union[str, int, float]


def format_bytes(num_bytes: float) -> str:
    """Human-readable byte counts (1.4e9 style, as the paper annotates)."""
    if num_bytes == 0:
        return "0"
    return f"{num_bytes:.2e}"


def format_seconds(seconds: float) -> str:
    return f"{seconds:,.2f}s"


def normalize(values: Sequence[float]) -> List[float]:
    """Normalize against the minimum (the paper's 'slowdown relative to
    fastest' presentation in Figures 4-7)."""
    fastest = min(value for value in values if value > 0)
    return [value / fastest if value > 0 else 0.0 for value in values]


class Table:
    """A fixed-column text table with a title."""

    def __init__(self, title: str, columns: Sequence[str]):
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *cells: Cell) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append([self._render(cell) for cell in cells])

    @staticmethod
    def _render(cell: Cell) -> str:
        if isinstance(cell, bool):
            return "yes" if cell else "no"
        if isinstance(cell, float):
            if cell == 0:
                return "0"
            if abs(cell) >= 1e6 or abs(cell) < 1e-3:
                return f"{cell:.2e}"
            return f"{cell:,.2f}"
        if isinstance(cell, int):
            return f"{cell:,}"
        return str(cell)

    def render(self) -> str:
        widths = [len(name) for name in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(
            name.ljust(widths[i]) for i, name in enumerate(self.columns)
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append(
                "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
            )
        return "\n".join(lines)

    def show(self) -> None:
        print()
        print(self.render())
        print()
