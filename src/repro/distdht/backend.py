"""Backend selection: one string spec -> a configured BackingStore.

This is the single point the Session / CLI layers go through, so the
backend matrix lives in exactly one place:

=========  ==========================================  =================
spec       storage                                     scope
=========  ==========================================  =================
``sim``    simulated in-process dict (no BackingStore)  one process
``mem``    :class:`InMemoryBackingStore` (dict of       one process
           encoded records; the conformance oracle)
``shm``    :class:`SharedMemoryBackingStore`            one host,
           (``multiprocessing.shared_memory``)          many processes
``socket`` :class:`SocketBackingStore` against          many hosts
           ``python -m repro dht-server`` nodes
=========  ==========================================  =================
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Tuple

from repro.distdht.backing import BackingStore, InMemoryBackingStore
from repro.distdht.shm import SharedMemoryBackingStore
from repro.distdht.sockets import SocketBackingStore

#: specs accepted by ``Session(backend=...)`` / ``serve --backend``
BACKENDS = ("sim", "mem", "shm", "socket")


def parse_node(spec: str) -> Tuple[str, int]:
    """``"host:port"`` / ``":port"`` / ``"port"`` -> ``(host, port)``."""
    text = spec.strip()
    host, sep, port_text = text.rpartition(":")
    if not sep:
        host, port_text = "", text
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"bad dht node spec {spec!r}: expected host:port")
    if not 0 < port < 65536:
        raise ValueError(f"bad dht node spec {spec!r}: port out of range")
    return (host or "127.0.0.1", port)


def create_backend(spec: Optional[str], *,
                   nodes: Optional[Sequence[Any]] = None,
                   replication: int = 1,
                   **options: Any) -> Optional[BackingStore]:
    """Build the backing store for a backend spec.

    Returns ``None`` for ``"sim"`` (and for ``None``): the simulated
    dict-backed stores need no backing.  An already constructed
    :class:`BackingStore` passes through unchanged, so callers can inject
    a custom backend (tests do).
    """
    if spec is None or spec == "sim":
        return None
    if isinstance(spec, BackingStore):
        return spec
    if spec == "mem":
        return InMemoryBackingStore()
    if spec == "shm":
        return SharedMemoryBackingStore(**options)
    if spec == "socket":
        if not nodes:
            raise ValueError(
                "backend 'socket' needs at least one dht node "
                "(host:port); start nodes with: python -m repro dht-server")
        parsed = [parse_node(node) if isinstance(node, str) else node
                  for node in nodes]
        return SocketBackingStore(parsed, replication=replication, **options)
    raise ValueError(
        f"unknown backend {spec!r}; expected one of {', '.join(BACKENDS)}")
