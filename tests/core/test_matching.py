"""Tests for AMPC maximal matching (both Theorem 2 variants) and the MPC
rootset baseline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ampc import ClusterConfig
from repro.baselines import mpc_rootset_matching
from repro.core import ampc_maximal_matching, ampc_matching_phases
from repro.core.ranks import hash_rank
from repro.graph import Graph, complete_graph, cycle_graph, path_graph, star_graph
from repro.graph.generators import barabasi_albert_graph, erdos_renyi_gnm
from repro.graph.graph import edge_key
from repro.sequential import greedy_matching, is_maximal_matching

CONFIG = ClusterConfig(num_machines=4)


def reference_matching(graph, seed):
    ranks = {
        edge_key(u, v): hash_rank(seed, *edge_key(u, v))
        for u, v in graph.edges()
    }
    return greedy_matching(graph, ranks)


class TestAMPCMatching:
    def test_matches_sequential_greedy(self):
        for seed in range(5):
            graph = erdos_renyi_gnm(40, 90, seed=seed)
            result = ampc_maximal_matching(graph, seed=seed, config=CONFIG)
            assert result.matching == reference_matching(graph, seed)

    def test_always_maximal(self):
        graph = barabasi_albert_graph(120, 3, seed=1)
        result = ampc_maximal_matching(graph, seed=1, config=CONFIG)
        assert is_maximal_matching(graph, result.matching)

    def test_single_shuffle(self):
        """Table 3: AMPC MM uses exactly one shuffle."""
        graph = erdos_renyi_gnm(50, 100, seed=2)
        result = ampc_maximal_matching(graph, seed=2, config=CONFIG)
        assert result.metrics.shuffles == 1

    def test_empty_graph(self):
        result = ampc_maximal_matching(Graph(4), seed=0, config=CONFIG)
        assert result.matching == set()

    def test_path_alternation(self):
        graph = path_graph(2)
        result = ampc_maximal_matching(graph, seed=0, config=CONFIG)
        assert result.matching == {(0, 1)}

    def test_star_single_edge(self):
        graph = star_graph(9)
        result = ampc_maximal_matching(graph, seed=3, config=CONFIG)
        assert len(result.matching) == 1

    def test_complete_graph_perfect_matching(self):
        graph = complete_graph(8)
        result = ampc_maximal_matching(graph, seed=4, config=CONFIG)
        assert len(result.matching) == 4

    def test_caching_reduces_lookups(self):
        graph = barabasi_albert_graph(150, 3, seed=5)
        cached = ampc_maximal_matching(
            graph, seed=5, config=CONFIG.with_overrides(caching=True))
        uncached = ampc_maximal_matching(
            graph, seed=5, config=CONFIG.with_overrides(caching=False))
        assert cached.matching == uncached.matching
        assert cached.metrics.kv_reads < uncached.metrics.kv_reads

    def test_phase_breakdown(self):
        graph = erdos_renyi_gnm(40, 80, seed=6)
        result = ampc_maximal_matching(graph, seed=6, config=CONFIG)
        for phase in ("PermuteGraph", "KV-Write", "IsInMM"):
            assert phase in result.metrics.phases.seconds

    def test_truncated_matches(self):
        for seed in range(3):
            graph = erdos_renyi_gnm(40, 100, seed=seed)
            expected = reference_matching(graph, seed)
            result = ampc_maximal_matching(graph, seed=seed, config=CONFIG,
                                           search_budget=6)
            assert result.matching == expected


class TestAlgorithm4:
    def test_matches_sequential_greedy(self):
        for seed in range(3):
            graph = erdos_renyi_gnm(60, 200, seed=seed)
            result = ampc_matching_phases(graph, seed=seed, config=CONFIG)
            assert result.matching == reference_matching(graph, seed)

    def test_high_degree_graph_peels_levels(self):
        graph = barabasi_albert_graph(200, 6, seed=2)
        result = ampc_matching_phases(graph, seed=2, config=CONFIG)
        assert is_maximal_matching(graph, result.matching)
        assert len(result.level_sizes) >= 1

    def test_empty_graph(self):
        result = ampc_matching_phases(Graph(5), seed=0, config=CONFIG)
        assert result.matching == set()

    def test_level_count_log_log(self):
        """Algorithm 4 runs ceil(log2 log2 Delta) + 1 levels (plus
        possibly a cleanup)."""
        import math
        graph = barabasi_albert_graph(300, 5, seed=3)
        delta = graph.max_degree()
        bound = math.ceil(math.log2(max(2, math.log2(delta)))) + 2
        result = ampc_matching_phases(graph, seed=3, config=CONFIG)
        assert len(result.level_sizes) <= bound


class TestRootsetMatching:
    def test_matches_ampc(self):
        for seed in range(4):
            graph = erdos_renyi_gnm(50, 130, seed=seed)
            ampc = ampc_maximal_matching(graph, seed=seed, config=CONFIG)
            mpc = mpc_rootset_matching(graph, seed=seed, config=CONFIG,
                                       in_memory_threshold=16)
            assert ampc.matching == mpc.matching

    def test_more_shuffles_than_ampc(self):
        graph = erdos_renyi_gnm(80, 300, seed=5)
        ampc = ampc_maximal_matching(graph, seed=5, config=CONFIG)
        mpc = mpc_rootset_matching(graph, seed=5, config=CONFIG,
                                   in_memory_threshold=8)
        assert mpc.metrics.shuffles > ampc.metrics.shuffles

    def test_cycle(self):
        graph = cycle_graph(20)
        result = mpc_rootset_matching(graph, seed=6, config=CONFIG,
                                      in_memory_threshold=4)
        assert is_maximal_matching(graph, result.matching)


@given(
    st.integers(min_value=2, max_value=25),
    st.integers(min_value=0, max_value=500),
)
@settings(max_examples=20, deadline=None)
def test_ampc_matching_property(n, seed):
    m = min(2 * n, n * (n - 1) // 2)
    graph = erdos_renyi_gnm(n, m, seed=seed)
    result = ampc_maximal_matching(graph, seed=seed,
                                   config=ClusterConfig(num_machines=3))
    assert result.matching == reference_matching(graph, seed)
    assert is_maximal_matching(graph, result.matching)
