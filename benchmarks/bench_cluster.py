"""Cluster-backend benchmark: worker scaling over one shared artifact.

The multi-host story of the distributed backend (``repro.distdht``): N
serving workers answer a mixed query burst against **one** physically
shared prepared graph.  On the ``sim`` backend every worker needs its own
shipped copy; on ``shm`` the dispatcher publishes the graph once into
shared memory and every worker (including respawned ones) resolves the
same bytes — ship-once becomes write-once.  The ``socket`` workload runs
the same burst against real DHT nodes over TCP with replication 2, which
prices the wire protocol against same-host shared memory.

Results live in ``BENCH_cluster.json`` at the repository root:

* ``after_s`` — committed wall-clock per workload (best-of repeats);
* ``graphs_shipped`` — publications needed to feed the workers (the
  write-once invariant: 1 per graph on shm, whatever N is);
* ``--check`` gates CI: the write-once/completion invariants must hold
  and a fresh measurement may not exceed ``REGRESSION_FACTOR x`` the
  committed ``after_s``.

Usage::

    python benchmarks/bench_cluster.py                # full sweep, record
    python benchmarks/bench_cluster.py --quick        # small CI suite
    python benchmarks/bench_cluster.py --quick --check  # CI gate
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.ampc.cluster import ClusterConfig  # noqa: E402
from repro.distdht import DHTNodeServer  # noqa: E402
from repro.graph.generators import erdos_renyi_gnm  # noqa: E402
from repro.serve import GraphService, ProcessGraphService  # noqa: E402

#: a fresh measurement may be at most this factor above the committed
#: after_s before --check fails (cross-machine headroom included)
REGRESSION_FACTOR = 2.5
#: absolute grace floor: tiny workloads are dominated by process startup
REGRESSION_FLOOR_S = 1.5

BENCH_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_cluster.json",
)

CONFIG = ClusterConfig(num_machines=4)


def _burst(quick: bool) -> List[Tuple[str, int]]:
    algorithms = ("mis", "components") if quick else (
        "mis", "matching", "components")
    seeds = range(2 if quick else 4)
    return [(algorithm, seed) for algorithm in algorithms for seed in seeds]


def _graph(quick: bool):
    if quick:
        return erdos_renyi_gnm(120, 240, seed=3)
    return erdos_renyi_gnm(300, 900, seed=3)


def _drive(service, burst) -> Dict[str, int]:
    service.load("g", _GRAPH)
    pending = [service.submit(algorithm, "g", seed=seed)
               for algorithm, seed in burst]
    for item in pending:
        item.result(timeout=600)
    return service.stats()


#: module-level so worker forks inherit it instead of re-building it
_GRAPH = None


def _procpool_workload(processes: int, burst) -> Callable[[], Dict]:
    def run() -> Dict:
        with ProcessGraphService(CONFIG, processes=processes,
                                 backend="shm",
                                 spill_threshold=1) as service:
            stats = _drive(service, burst)
        return {"graphs_shipped": stats["graphs_shipped"],
                "completed": stats["completed"]}
    return run


def _threadpool_workload(burst) -> Callable[[], Dict]:
    def run() -> Dict:
        with GraphService(CONFIG, workers=2, backend="shm") as service:
            stats = _drive(service, burst)
        return {"graphs_shipped": 0, "completed": stats["completed"]}
    return run


def _socket_workload(burst, replication: int = 2) -> Callable[[], Dict]:
    def run() -> Dict:
        with DHTNodeServer() as node_a, DHTNodeServer() as node_b:
            with GraphService(CONFIG, workers=2, backend="socket",
                              dht_nodes=[node_a.address, node_b.address],
                              replication=replication) as service:
                stats = _drive(service, burst)
        return {"graphs_shipped": 0, "completed": stats["completed"]}
    return run


def _suite(quick: bool) -> List[Tuple[str, Callable[[], Dict]]]:
    burst = _burst(quick)
    ranks = (1, 2) if quick else (1, 2, 4)
    workloads: List[Tuple[str, Callable[[], Dict]]] = [
        (f"shm.procpool/n{processes}", _procpool_workload(processes, burst))
        for processes in ranks
    ]
    workloads.append(("shm.threads/n2", _threadpool_workload(burst)))
    workloads.append(("socket.r2/n2", _socket_workload(burst)))
    return workloads


def _measure(run: Callable[[], Dict], repeats: int) -> Dict:
    best = float("inf")
    info: Dict = {}
    for _ in range(repeats):
        start = time.perf_counter()
        info = run()
        best = min(best, time.perf_counter() - start)
    info["wall_s"] = round(best, 4)
    return info


def _load_report(path: str) -> Dict:
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    return {"schema": 1, "unit": "seconds",
            "regression_factor": REGRESSION_FACTOR, "suites": {}}


def _save_report(report: Dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _invariant_failures(name: str, numbers: Dict, burst_size: int) -> List[str]:
    failures = []
    if numbers["completed"] != burst_size:
        failures.append(
            f"{name}: completed {numbers['completed']} of {burst_size} "
            "queries")
    if name.startswith("shm.procpool/") and numbers["graphs_shipped"] != 1:
        failures.append(
            f"{name}: graphs_shipped == {numbers['graphs_shipped']}, "
            "want exactly 1 (write-once fronting)")
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    global _GRAPH
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="small burst and graph (the CI suite)")
    parser.add_argument("--check", action="store_true",
                        help="verify invariants and compare against the "
                             "committed after_s (fail on >%.1fx)"
                             % REGRESSION_FACTOR)
    parser.add_argument("--repeats", type=int, default=None,
                        help="measurements per workload (best-of; "
                             "default 2 full / 1 quick)")
    parser.add_argument("--output", default=BENCH_PATH,
                        help="report path (default: BENCH_cluster.json)")
    args = parser.parse_args(argv)

    suite_name = "quick" if args.quick else "full"
    repeats = args.repeats or (1 if args.quick else 2)
    _GRAPH = _graph(args.quick)
    burst_size = len(_burst(args.quick))

    measured: Dict[str, Dict] = {}
    failures: List[str] = []
    for name, run in _suite(args.quick):
        numbers = _measure(run, repeats)
        measured[name] = numbers
        failures.extend(_invariant_failures(name, numbers, burst_size))
        print(f"{name:24s} {numbers['wall_s']:8.3f}s wall  "
              f"shipped={numbers['graphs_shipped']}  "
              f"completed={numbers['completed']}/{burst_size}")

    report = _load_report(args.output)
    suite = report["suites"].setdefault(suite_name, {"workloads": {}})
    if args.check:
        for name, numbers in measured.items():
            entry = suite["workloads"].setdefault(name, {})
            entry["last_check_s"] = numbers["wall_s"]
            entry["last_check_cpus"] = os.cpu_count()
            committed = entry.get("after_s")
            if committed is None:
                continue
            limit = max(committed * REGRESSION_FACTOR, REGRESSION_FLOOR_S)
            if numbers["wall_s"] > limit:
                failures.append(
                    f"{name}: {numbers['wall_s']:.3f}s exceeds "
                    f"{limit:.3f}s ({REGRESSION_FACTOR}x committed "
                    f"{committed:.3f}s)")
        _save_report(report, args.output)
        for failure in failures:
            print(f"REGRESSION  {failure}")
        print("cluster check:", "FAIL" if failures else "OK")
        return 1 if failures else 0

    if failures:
        for failure in failures:
            print(f"INVARIANT  {failure}")
        return 1
    for name, numbers in measured.items():
        entry = suite["workloads"].setdefault(name, {})
        entry["after_s"] = numbers["wall_s"]
        entry["graphs_shipped"] = numbers["graphs_shipped"]
        entry["completed"] = numbers["completed"]
        entry["cpus"] = os.cpu_count()
    _save_report(report, args.output)
    print(f"recorded after_s for suite {suite_name!r} in {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
