"""Cache-policy tests: LRU eviction, content keys, and memory release.

The preprocessing cache is the serving layer's hot asset; these tests pin
down its policy: byte-budgeted LRU order, eviction accounting, cold runs
leaving the cache untouched, content-stable keys that survive in-place
mutation, and the guarantee that cached entries hold no strong reference
to input graphs.
"""

import gc
import weakref

import pytest

from repro.ampc.cluster import ClusterConfig
from repro.api import Session, graph_fingerprint
from repro.graph.generators import erdos_renyi_gnm

CONFIG = ClusterConfig(num_machines=4)

GRAPH_A = erdos_renyi_gnm(30, 60, seed=1)
GRAPH_B = erdos_renyi_gnm(30, 60, seed=2)
#: strictly smaller than A/B so its insertion evicts exactly one entry
GRAPH_C = erdos_renyi_gnm(30, 35, seed=3)


class TestLRUEviction:
    def test_eviction_follows_recency_order(self):
        session = Session(CONFIG)
        session.run("mis", GRAPH_A, seed=0)
        session.run("mis", GRAPH_B, seed=0)
        assert session.cached_preprocessings == 2
        # Cap the budget at exactly the current contents, touch A so B
        # becomes least-recently-used, then insert C.
        session.max_cache_bytes = session.cache_bytes
        touched = session.run("mis", GRAPH_A, seed=0)
        assert touched.preprocessing_reused
        session.run("mis", GRAPH_C, seed=0)
        assert session.stats.preprocessing_evictions == 1
        # A (recently used) survived; B (LRU) was evicted.
        assert session.run("mis", GRAPH_A, seed=0).preprocessing_reused
        assert not session.run("mis", GRAPH_B, seed=0).preprocessing_reused

    def test_budget_is_enforced_in_bytes(self):
        session = Session(CONFIG, max_cache_bytes=1)
        session.run("mis", GRAPH_A, seed=0)
        # A single over-budget entry is kept (evicting it would thrash)...
        assert session.cached_preprocessings == 1
        session.run("mis", GRAPH_B, seed=0)
        # ...but a second insertion evicts down to one entry again.
        assert session.cached_preprocessings == 1
        assert session.stats.preprocessing_evictions == 1
        assert session.cache_bytes > 0

    def test_unbounded_by_default(self):
        session = Session(CONFIG)
        for seed in range(3):
            session.run("mis", GRAPH_A, seed=seed)
        session.run("mis", GRAPH_B, seed=0)
        assert session.cached_preprocessings == 4
        assert session.stats.preprocessing_evictions == 0

    def test_clear_resets_bytes(self):
        session = Session(CONFIG)
        session.run("mis", GRAPH_A, seed=0)
        assert session.cache_bytes > 0
        session.clear_preprocessing()
        assert session.cache_bytes == 0
        assert session.cached_preprocessings == 0


class TestReuseDisabled:
    def test_cold_run_leaves_cache_untouched(self):
        session = Session(CONFIG)
        session.run("mis", GRAPH_A, seed=0)
        entries = session.cached_preprocessings
        nbytes = session.cache_bytes
        cold = session.run("mis", GRAPH_A, seed=0,
                           reuse_preprocessing=False)
        assert not cold.preprocessing_reused
        assert session.cached_preprocessings == entries
        assert session.cache_bytes == nbytes
        assert session.stats.preprocessing_evictions == 0
        # the cached entry is still served afterwards
        assert session.run("mis", GRAPH_A, seed=0).preprocessing_reused

    def test_cold_run_does_not_insert(self):
        session = Session(CONFIG)
        cold = session.run("mis", GRAPH_A, seed=0,
                           reuse_preprocessing=False)
        assert not cold.preprocessing_reused
        assert session.cached_preprocessings == 0


class TestContentKeys:
    def test_equal_graphs_share_preprocessing(self):
        """Content keys: two equal graph objects hit the same entry."""
        session = Session(CONFIG)
        twin = erdos_renyi_gnm(30, 60, seed=1)
        session.run("mis", GRAPH_A, seed=0)
        assert session.run("mis", twin, seed=0).preprocessing_reused

    def test_count_preserving_mutation_invalidates_raw_runs(self):
        """The id(graph)+counts regression: an edge swap keeps both counts
        but must not serve the stale DHT-resident artifact."""
        graph = erdos_renyi_gnm(30, 60, seed=4)
        session = Session(CONFIG)
        session.run("mis", graph, seed=0)
        u, v = next(iter(graph.edges()))
        a, b = _absent_edge(graph)
        graph.remove_edge(u, v)
        graph.add_edge(a, b)
        assert graph.num_edges == 60  # count-preserving
        second = session.run("mis", graph, seed=0)
        assert not second.preprocessing_reused
        fresh = Session(CONFIG).run("mis", graph, seed=0)
        assert second.output.independent_set == fresh.output.independent_set

    def test_mutation_with_reload_isolates_stale_entry(self):
        graph = erdos_renyi_gnm(30, 60, seed=5)
        session = Session(CONFIG)
        handle = session.load("g", graph)
        session.run("mis", "g", seed=0)
        u, v = next(iter(graph.edges()))
        a, b = _absent_edge(graph)
        graph.remove_edge(u, v)
        graph.add_edge(a, b)
        reloaded = session.load("g", graph)
        assert reloaded.fingerprint != handle.fingerprint
        second = session.run("mis", "g", seed=0)
        assert not second.preprocessing_reused
        assert second.graph_name == "g"
        fresh = Session(CONFIG).run("mis", graph, seed=0)
        assert second.output.independent_set == fresh.output.independent_set

    def test_count_changing_mutation_auto_refreshes_handles(self):
        """Mutations that change a count are caught without a re-load."""
        graph = erdos_renyi_gnm(30, 60, seed=8)
        session = Session(CONFIG)
        handle = session.load("g", graph)
        session.run("mis", "g", seed=0)
        a, b = _absent_edge(graph)
        graph.add_edge(a, b)  # 61 edges now
        second = session.run("mis", "g", seed=0)
        assert not second.preprocessing_reused
        assert handle.num_edges == 61  # the handle refreshed itself
        fresh = Session(CONFIG).run("mis", graph, seed=0)
        assert second.output.independent_set == fresh.output.independent_set

    def test_fingerprint_is_content_stable(self):
        twin = erdos_renyi_gnm(30, 60, seed=1)
        assert graph_fingerprint(GRAPH_A) == graph_fingerprint(twin)
        assert graph_fingerprint(GRAPH_A) != graph_fingerprint(GRAPH_B)


class TestMemoryRelease:
    def test_cache_holds_no_strong_graph_reference(self):
        """The old _CacheEntry.graph field kept every graph alive forever;
        content keys need no graph reference at all."""
        session = Session(CONFIG)
        graph = erdos_renyi_gnm(30, 60, seed=6)
        ref = weakref.ref(graph)
        session.run("mis", graph, seed=0)
        session.run("components", graph, seed=0)
        assert session.cached_preprocessings == 2
        del graph
        gc.collect()
        assert ref() is None
        # cached artifacts still serve an equal graph
        twin = erdos_renyi_gnm(30, 60, seed=6)
        assert session.run("mis", twin, seed=0).preprocessing_reused

    def test_handles_hold_weak_references(self):
        session = Session(CONFIG)
        graph = erdos_renyi_gnm(30, 60, seed=7)
        handle = session.load("g", graph)
        session.run("mis", handle, seed=0)
        del graph
        gc.collect()
        assert handle.graph is None
        with pytest.raises(ReferenceError, match="garbage-collected"):
            session.run("mis", "g", seed=0)


def _absent_edge(graph):
    """A non-edge (a, b) of ``graph`` with a != b."""
    for a in graph.vertices():
        for b in graph.vertices():
            if a < b and not graph.has_edge(a, b):
                return a, b
    raise AssertionError("graph is complete")


class TestHandleVersionGuard:
    def test_count_preserving_mutation_auto_refreshes_handles(self):
        """content_version catches handle-served mutations that keep both
        counts unchanged — no explicit re-load needed."""
        graph = erdos_renyi_gnm(30, 60, seed=9)
        session = Session(CONFIG)
        handle = session.load("g", graph)
        before = handle.fingerprint
        session.run("mis", "g", seed=0)
        u, v = next(iter(graph.edges()))
        a, b = _absent_edge(graph)
        graph.remove_edge(u, v)
        graph.add_edge(a, b)
        assert graph.num_edges == 60  # count-preserving
        second = session.run("mis", "g", seed=0)
        assert not second.preprocessing_reused
        assert handle.fingerprint != before  # the handle refreshed itself
        fresh = Session(CONFIG).run("mis", graph, seed=0)
        assert second.output.independent_set == fresh.output.independent_set
