"""Golden-metrics snapshot: simulated results must never silently drift.

Wall-clock optimization PRs rebuild the simulator's hot paths (hashing,
byte accounting, batched KV operations); the contract is that **every
simulated number stays byte-identical** — shuffle counts and bytes, KV
reads/writes and bytes, cache behaviour, rounds, simulated time, and the
per-phase breakdowns.  This suite runs each registered spec on a fixed
seed graph and compares the full counter set against a checked-in
snapshot (``tests/api/golden_metrics.json``).

To regenerate after an *intentional* simulated-metrics change::

    UPDATE_GOLDEN_METRICS=1 PYTHONPATH=src python -m pytest tests/api/test_golden_metrics.py

and commit the rewritten snapshot together with an explanation of why the
simulated numbers moved.
"""

import json
import os

import pytest

from repro.ampc.cluster import ClusterConfig
from repro.api import Session, registry
from repro.graph.generators import degree_weighted, erdos_renyi_gnm, two_cycles

SNAPSHOT_PATH = os.path.join(os.path.dirname(__file__), "golden_metrics.json")

CONFIG = ClusterConfig(num_machines=4)
SEED = 5

GRAPH = erdos_renyi_gnm(36, 60, seed=1)
WEIGHTED = degree_weighted(GRAPH)
CYCLES = two_cycles(24, shuffle_ids=True, seed=1)


def _input_for(spec):
    return {"graph": GRAPH, "weighted": WEIGHTED, "cycle": CYCLES}[
        spec.input_kind
    ]


#: the snapshot is checked on the simulated store AND on a real backend:
#: a run whose records physically live in shared memory must report the
#: exact same simulated numbers (the adapter keeps all accounting at the
#: store boundary)
BACKENDS = ("sim", "shm")


def _observe(spec, backend="sim"):
    """The full observable surface of one run: counters, phases, summary."""
    with Session(CONFIG, backend=backend) as session:
        result = session.run(spec.name, _input_for(spec), seed=SEED)
    return {
        "metrics": result.metrics,
        "phases": result.phases,
        "summary": result.summary,
        "rounds": result.rounds,
    }


def _load_snapshot():
    with open(SNAPSHOT_PATH, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _canonical(observed):
    """JSON round-trip so float/int representation matches the snapshot."""
    return json.loads(json.dumps(observed))


@pytest.fixture(scope="module")
def snapshot():
    if os.environ.get("UPDATE_GOLDEN_METRICS"):
        fresh = {spec.name: _canonical(_observe(spec))
                 for spec in registry.specs()}
        with open(SNAPSHOT_PATH, "w", encoding="utf-8") as handle:
            json.dump(fresh, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return _load_snapshot()


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("spec", registry.specs(), ids=lambda s: s.name)
def test_simulated_metrics_match_snapshot(spec, backend, snapshot):
    assert spec.name in snapshot, (
        f"no golden entry for {spec.name!r}; regenerate with "
        "UPDATE_GOLDEN_METRICS=1"
    )
    observed = _canonical(_observe(spec, backend))
    golden = snapshot[spec.name]
    # Compare section by section for a readable diff on failure.
    for section in ("metrics", "phases", "summary", "rounds"):
        assert observed[section] == golden[section], (
            f"{spec.name} on backend={backend}: simulated {section} "
            f"drifted from the golden snapshot — neither wall-clock "
            f"optimizations nor real storage backends may change "
            f"simulated results (regenerate only for intentional "
            f"cost-model/algorithm changes)"
        )


def test_every_snapshot_entry_is_still_registered(snapshot):
    registered = set(registry.names())
    stale = set(snapshot) - registered
    assert not stale, f"golden entries for unregistered algorithms: {stale}"
