"""Tests for AMPC connectivity and the local-contraction MPC baseline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ampc import ClusterConfig
from repro.baselines import mpc_local_contraction_cc
from repro.core import ampc_connected_components, ampc_forest_connectivity
from repro.graph import (
    Graph,
    cycle_graph,
    disjoint_union,
    grid_graph,
    path_graph,
    star_graph,
    two_cycles,
)
from repro.graph.generators import barabasi_albert_graph, erdos_renyi_gnm
from repro.graph.properties import connected_components
from repro.sequential.validate import components_equal

CONFIG = ClusterConfig(num_machines=4)


class TestForestConnectivity:
    def test_single_path(self):
        result = ampc_forest_connectivity(6, [(0, 1), (1, 2), (2, 3), (3, 4),
                                              (4, 5)], config=CONFIG)
        assert len(set(result.labels)) == 1

    def test_two_trees(self):
        result = ampc_forest_connectivity(6, [(0, 1), (1, 2), (3, 4)],
                                          config=CONFIG)
        labels = result.labels
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4]
        assert labels[0] != labels[3]
        assert labels[5] not in (labels[0], labels[3])

    def test_empty_forest(self):
        result = ampc_forest_connectivity(4, [], config=CONFIG)
        assert result.labels == [0, 1, 2, 3]
        assert result.iterations == 0

    def test_star_forest(self):
        edges = [(0, i) for i in range(1, 10)]
        result = ampc_forest_connectivity(10, edges, config=CONFIG)
        assert len(set(result.labels)) == 1

    def test_matches_bfs_partition(self):
        import random
        rng = random.Random(7)
        n = 60
        edges = []
        for v in range(1, n):
            if rng.random() < 0.8:
                edges.append((rng.randrange(v), v))
        forest_graph = Graph.from_edges(n, edges)
        expected = connected_components(forest_graph)
        result = ampc_forest_connectivity(n, edges, config=CONFIG)
        assert components_equal(result.labels, expected)

    def test_iterations_bounded(self):
        edges = list(path_graph(200).edges())
        result = ampc_forest_connectivity(200, edges, config=CONFIG)
        assert result.iterations <= 12


class TestAMPCConnectedComponents:
    def test_matches_bfs(self):
        for seed in range(3):
            graph = erdos_renyi_gnm(60, 80, seed=seed)
            result = ampc_connected_components(graph, seed=seed, config=CONFIG)
            assert components_equal(result.labels, connected_components(graph))

    def test_multi_component(self):
        graph = disjoint_union([cycle_graph(8), grid_graph(3, 3),
                                star_graph(5), path_graph(4)])
        result = ampc_connected_components(graph, seed=1, config=CONFIG)
        assert components_equal(result.labels, connected_components(graph))
        assert len(set(result.labels)) == 4

    def test_spanning_forest_returned(self):
        graph = barabasi_albert_graph(80, 2, seed=2)
        result = ampc_connected_components(graph, seed=2, config=CONFIG)
        # Connected graph: spanning tree has n - 1 edges.
        assert len(result.forest) == graph.num_vertices - 1

    def test_two_cycles_two_components(self):
        graph = two_cycles(20)
        result = ampc_connected_components(graph, seed=3, config=CONFIG)
        assert len(set(result.labels)) == 2


class TestLocalContraction:
    def test_matches_bfs(self):
        for seed in range(4):
            graph = erdos_renyi_gnm(60, 90, seed=seed)
            result = mpc_local_contraction_cc(graph, seed=seed, config=CONFIG,
                                              in_memory_threshold=8)
            assert components_equal(result.labels, connected_components(graph))

    def test_cycle_shrink_factor(self):
        """Section 5.6: the cycle shrinks geometrically per phase."""
        graph = cycle_graph(512, shuffle_ids=True, seed=5)
        result = mpc_local_contraction_cc(graph, seed=5, config=CONFIG,
                                          in_memory_threshold=8)
        counts = [512] + result.vertices_per_phase
        for before, after in zip(counts, counts[1:]):
            if before > 32:  # ratios are noisy at the tail
                assert after < 0.75 * before

    def test_three_shuffles_per_phase(self):
        graph = cycle_graph(256, shuffle_ids=True, seed=6)
        result = mpc_local_contraction_cc(graph, seed=6, config=CONFIG,
                                          in_memory_threshold=8)
        # 3 per phase + final gather.
        assert result.metrics.shuffles == 3 * result.phases + 1

    def test_two_cycles_detected(self):
        one = cycle_graph(200, shuffle_ids=True, seed=7)
        two = two_cycles(100, shuffle_ids=True, seed=7)
        r_one = mpc_local_contraction_cc(one, seed=7, config=CONFIG,
                                         in_memory_threshold=8)
        r_two = mpc_local_contraction_cc(two, seed=7, config=CONFIG,
                                         in_memory_threshold=8)
        assert r_one.num_components == 1
        assert r_two.num_components == 2

    def test_isolated_vertices(self):
        graph = Graph(5)
        graph.add_edge(0, 1)
        result = mpc_local_contraction_cc(graph, seed=0, config=CONFIG)
        assert components_equal(result.labels, connected_components(graph))


@given(
    st.integers(min_value=1, max_value=30),
    st.integers(min_value=0, max_value=300),
)
@settings(max_examples=15, deadline=None)
def test_local_contraction_property(n, seed):
    m = min(2 * n, n * (n - 1) // 2)
    graph = erdos_renyi_gnm(n, m, seed=seed)
    result = mpc_local_contraction_cc(graph, seed=seed,
                                      config=ClusterConfig(num_machines=3),
                                      in_memory_threshold=4)
    assert components_equal(result.labels, connected_components(graph))
