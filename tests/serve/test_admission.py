"""Load-adaptive serving: admission control, deadlines, autoscaling.

The acceptance story: a burst past the budget is shed with a structured
retry hint instead of wedging the queue, deadlines bound queue wait end
to end (pool, thread service, process service), cancel() gives callers
the same lever explicitly, and the process-pool monitor replaces hung
workers and scales the pool under sustained depth.  SIGSTOP stands in
for a wedged worker throughout — it freezes the heartbeat thread exactly
like a deadlocked or stuck-in-C process would.
"""

import os
import signal
import threading
import time

import pytest

from repro.ampc.cluster import ClusterConfig
from repro.api import registry
from repro.graph.generators import erdos_renyi_gnm
from repro.serve import (
    AdmissionController,
    CancelledError,
    DeadlineExceededError,
    GraphService,
    OverloadedError,
    PeakHoldLoadEstimator,
    ProcessGraphService,
    WorkerDiedError,
    WorkerPool,
    estimate_query_cost,
)

CONFIG = ClusterConfig(num_machines=4)
GRAPH = erdos_renyi_gnm(40, 100, seed=1)

#: what one cold mis query on GRAPH is priced at under CONFIG
MIS_PRICE = estimate_query_cost(registry.get("mis"), GRAPH.num_vertices,
                                GRAPH.num_edges, cached=False,
                                config=CONFIG)


def _wait_until(predicate, timeout=15.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestCostEstimator:
    def test_monotone_in_graph_size(self):
        spec = registry.get("mis")
        small = estimate_query_cost(spec, 10, 20, cached=False)
        large = estimate_query_cost(spec, 1000, 20000, cached=False)
        assert 0 < small < large

    def test_cached_queries_skip_the_preprocessing_price(self):
        spec = registry.get("matching")
        cold = estimate_query_cost(spec, 500, 2000, cached=True)
        warm = estimate_query_cost(spec, 500, 2000, cached=False)
        assert cold < warm
        # the asymmetry the serving tier exploits: the shared artifact
        # dominates the price
        assert warm / cold > 10


class TestPeakHoldEstimator:
    def test_rises_instantly_decays_by_half_life(self):
        clock = [0.0]
        estimator = PeakHoldLoadEstimator(2.0, clock=lambda: clock[0])
        assert estimator.observe(8.0) == 8.0
        # a lower sample does not pull the held peak down...
        assert estimator.observe(1.0) == 8.0
        # ...until time decays it: one half-life halves the peak
        clock[0] = 2.0
        assert estimator.observe(1.0) == pytest.approx(4.0)
        clock[0] = 6.0  # two more half-lives: 4 -> 1
        assert estimator.level() == pytest.approx(1.0)

    def test_new_peak_replaces_decayed_one(self):
        clock = [0.0]
        estimator = PeakHoldLoadEstimator(1.0, clock=lambda: clock[0])
        estimator.observe(4.0)
        clock[0] = 10.0
        assert estimator.observe(3.0) == 3.0


class TestAdmissionController:
    def test_admit_queue_shed_ladder(self):
        gate = AdmissionController(10.0, queue_factor=2.0)
        assert gate.try_acquire(8.0)[0] == "admit"
        assert gate.try_acquire(8.0)[0] == "queue"  # 16 <= 20, > 10
        decision, retry_after = gate.try_acquire(8.0)  # 24 > 20
        assert decision == "shed"
        assert retry_after > 0
        snapshot = gate.snapshot()
        assert (snapshot["admitted"], snapshot["queued"],
                snapshot["shed"]) == (1, 1, 1)
        assert snapshot["inflight_cost"] == pytest.approx(16.0)

    def test_release_reopens_the_gate(self):
        gate = AdmissionController(1.0, queue_factor=1.0)
        assert gate.try_acquire(1.0)[0] == "admit"
        assert gate.try_acquire(1.0)[0] == "shed"
        gate.release(1.0)
        assert gate.inflight_cost == 0.0
        assert gate.try_acquire(1.0)[0] == "admit"

    def test_free_queries_are_always_admitted(self):
        gate = AdmissionController(1.0)
        assert gate.try_acquire(0.0)[0] == "admit"


class TestPoolDeadlinesAndCancel:
    def test_deadline_expires_while_queued(self):
        pool = WorkerPool(workers=1)
        gate = threading.Event()
        blocker = pool.submit(gate.wait)
        pending = pool.submit(lambda: "ran",
                              deadline=time.monotonic() + 0.05)
        time.sleep(0.1)
        gate.set()
        with pytest.raises(DeadlineExceededError):
            pending.result(30)
        assert blocker.result(30)
        pool.close()

    def test_started_work_is_never_interrupted(self):
        pool = WorkerPool(workers=1)
        pending = pool.submit(lambda: time.sleep(0.1) or "done",
                              deadline=time.monotonic() + 0.02)
        # the deadline passes mid-execution; execution wins
        assert pending.result(30) == "done"
        pool.close()

    def test_cancel_while_queued(self):
        pool = WorkerPool(workers=1)
        gate = threading.Event()
        pool.submit(gate.wait)
        ran = []
        pending = pool.submit(lambda: ran.append(1))
        assert pending.cancel()
        assert pending.cancelled()
        assert not pending.cancel()  # idempotent: already resolved
        gate.set()
        with pytest.raises(CancelledError):
            pending.result(30)
        pool.close()
        assert not ran

    def test_cancel_after_completion_is_refused(self):
        pool = WorkerPool(workers=1)
        pending = pool.submit(lambda: 42)
        assert pending.result(30) == 42
        assert not pending.cancel()
        assert not pending.cancelled()
        pool.close()

    def test_done_callback_runs_before_result_returns(self):
        pool = WorkerPool(workers=1)
        seen = []
        pending = pool.submit(lambda: "x")
        pending.add_done_callback(lambda p: seen.append(p.error))
        assert pending.result(30) == "x"
        assert seen == [None]
        # late registration fires immediately
        pending.add_done_callback(lambda p: seen.append("late"))
        assert seen == [None, "late"]
        pool.close()


class TestGraphServiceAdmission:
    def test_burst_sheds_structured_and_recovers(self):
        with GraphService(CONFIG, workers=1,
                          max_inflight_cost=MIS_PRICE * 1.2,
                          admission_queue_factor=2.0,
                          admission_decay_s=0.2) as service:
            service.load("g", GRAPH)
            gate = threading.Event()
            service._pool.submit(gate.wait)  # wedge the only worker
            admitted = service.submit("mis", "g", seed=0)
            queued = service.submit("mis", "g", seed=1)
            with pytest.raises(OverloadedError) as caught:
                service.submit("mis", "g", seed=2)
            assert caught.value.retry_after_s > 0
            stats = service.stats()
            assert stats["queries_shed"] == 1
            assert stats["admission"]["shed"] == 1
            assert stats["admission"]["admitted"] == 1
            assert stats["admission"]["queued"] == 1
            # pressure drains: charged cost is released and the gate
            # reopens — the service answers again after the burst
            gate.set()
            admitted.result(60)
            queued.result(60)
            assert service.stats()["admission"]["inflight_cost"] == 0.0
            after = service.query("mis", "g", seed=3, timeout=60)
            assert after.algorithm == "mis"
            assert service.stats()["completed"] >= 3

    def test_queue_wait_deadline_sheds_stale_queries(self):
        with GraphService(CONFIG, workers=1) as service:
            service.load("g", GRAPH)
            gate = threading.Event()
            service._pool.submit(gate.wait)
            pending = service.submit("mis", "g", seed=0, deadline=0.05)
            time.sleep(0.1)
            gate.set()
            with pytest.raises(DeadlineExceededError):
                pending.result(60)
            stats = service.stats()
            assert stats["deadline_exceeded"] == 1
            assert stats["failed"] == 1

    def test_default_deadline_applies_when_unspecified(self):
        with GraphService(CONFIG, workers=1,
                          default_deadline_s=0.05) as service:
            service.load("g", GRAPH)
            gate = threading.Event()
            service._pool.submit(gate.wait)
            pending = service.submit("mis", "g", seed=0)
            time.sleep(0.1)
            gate.set()
            assert isinstance(pending.exception(60), DeadlineExceededError)

    def test_admission_off_by_default(self):
        with GraphService(CONFIG, workers=1) as service:
            service.load("g", GRAPH)
            assert "admission" not in service.stats()
            assert service.stats()["queries_shed"] == 0


@pytest.mark.parametrize("service_cls", [GraphService, ProcessGraphService],
                         ids=["threads", "processes"])
def test_expired_deadline_never_executes(service_cls):
    """deadline=0 is already over at submit: both dispatchers cancel the
    query before execution and report it in their counters."""
    kwargs = ({"workers": 1} if service_cls is GraphService
              else {"processes": 1})
    with service_cls(CONFIG, **kwargs) as service:
        service.load("g", GRAPH)
        pending = service.submit("mis", "g", seed=0, deadline=0.0)
        assert isinstance(pending.exception(60), DeadlineExceededError)
        assert _wait_until(
            lambda: service.stats()["deadline_exceeded"] == 1)
        # the service is unharmed
        assert service.query("mis", "g", seed=1, timeout=60).algorithm == "mis"


class TestProcessServiceAdmission:
    def test_burst_against_frozen_worker_sheds_and_recovers(self):
        # distinct same-sized graphs: each query pays the full cold
        # price (the shipped-fingerprint proxy makes repeats ~free)
        graphs = {name: erdos_renyi_gnm(40, 100, seed=index)
                  for index, name in enumerate(("a", "b", "c"))}
        with ProcessGraphService(
                CONFIG, processes=1, max_inflight_cost=MIS_PRICE * 1.2,
                admission_queue_factor=2.0, admission_decay_s=0.2,
                hung_after_intervals=None) as service:
            for name, graph in graphs.items():
                service.load(name, graph)
            worker = service._clients[0]
            os.kill(worker.process.pid, signal.SIGSTOP)
            try:
                admitted = service.submit("mis", "a", seed=0)
                queued = service.submit("mis", "b", seed=0)
                with pytest.raises(OverloadedError) as caught:
                    service.submit("mis", "c", seed=0)
                assert caught.value.retry_after_s > 0
                # the burst did not grow the worker queue past the
                # admission ceiling (admit + queue, shed the rest)
                assert worker.inflight_runs == 2
            finally:
                os.kill(worker.process.pid, signal.SIGCONT)
            admitted.result(120)
            queued.result(120)
            stats = service.stats()
            assert stats["queries_shed"] == 1
            assert stats["admission"]["shed"] == 1
            assert stats["admission"]["inflight_cost"] == 0.0
            after = service.query("mis", "a", seed=3, timeout=120)
            assert after.algorithm == "mis"


class TestHungWorkerDetection:
    def test_wedged_worker_is_killed_and_replaced(self):
        # retry_worker_death=False so the kill surfaces to the caller —
        # this test asserts the *detection* machinery, not the retry
        with ProcessGraphService(
                CONFIG, processes=1,
                monitor_interval_s=0.05, hung_after_intervals=4,
                heartbeat_interval_s=0.02,
                retry_worker_death=False) as service:
            service.load("g", GRAPH)
            assert service.query("mis", "g", seed=0,
                                 timeout=120).algorithm == "mis"
            worker = service._clients[0]
            os.kill(worker.process.pid, signal.SIGSTOP)
            # outstanding work + total heartbeat silence = hung
            pending = service.submit("mis", "g", seed=1)
            assert isinstance(pending.exception(120), WorkerDiedError)
            assert _wait_until(lambda: service._clients[0] is not worker)
            stats = service.stats()
            assert stats["workers_hung"] >= 1
            assert stats["workers_respawned"] >= 1
            # the replacement serves (the dispatcher re-ships the graph)
            after = service.query("mis", "g", seed=2, timeout=120)
            assert after.algorithm == "mis"

    def test_heartbeats_keep_busy_workers_alive(self):
        """A worker that is merely *busy* (long queries, heartbeats
        flowing) is never mistaken for hung."""
        with ProcessGraphService(
                CONFIG, processes=1,
                monitor_interval_s=0.05, hung_after_intervals=4,
                heartbeat_interval_s=0.02) as service:
            service.load("g", GRAPH)
            pending = [service.submit("mis", "g", seed=seed)
                       for seed in range(6)]
            results = [p.result(300) for p in pending]
            assert len(results) == 6
            stats = service.stats()
            assert stats["workers_hung"] == 0
            assert stats["workers_respawned"] == 0


class TestAutoscaling:
    def test_sustained_depth_grows_then_drains_shrink(self):
        with ProcessGraphService(
                CONFIG, processes=1, autoscale_max=2,
                monitor_interval_s=0.05, scale_after_intervals=2,
                spill_threshold=1, hung_after_intervals=None,
                admission_decay_s=0.1) as service:
            service.load("g", GRAPH)
            worker = service._clients[0]
            os.kill(worker.process.pid, signal.SIGSTOP)
            try:
                pending = [service.submit("mis", "g", seed=seed)
                           for seed in range(3)]
                # sustained backlog on every worker -> the pool grows
                assert _wait_until(lambda: service.processes == 2)
            finally:
                os.kill(worker.process.pid, signal.SIGCONT)
            for p in pending:
                p.result(120)
            assert service.stats()["workers_scaled"] >= 1
            # pressure stays off -> the held depth decays -> the pool
            # shrinks back to its base size
            assert _wait_until(lambda: service.processes == 1, timeout=30.0)
            assert service.query("mis", "g", seed=9,
                                 timeout=120).algorithm == "mis"

    def test_autoscale_max_must_cover_base(self):
        with pytest.raises(ValueError, match="autoscale_max"):
            ProcessGraphService(CONFIG, processes=4, autoscale_max=2)
