"""Incremental (batch-dynamic) preprocessing: patch, don't re-prepare.

The acceptance contract of the incremental path: for every spec with an
``update`` hook, a run served by patching a cached ancestor artifact must
produce **exactly** the result a from-scratch prepare+run on the mutated
graph produces — while ``SessionStats`` proves the patch path actually ran
(``incremental_updates``) and every fallback is a counted full prepare.
"""

import random

import pytest

from repro.ampc.cluster import ClusterConfig
from repro.api import Session, SessionStats, registry
from repro.graph.generators import erdos_renyi_gnm
from repro.graph.graph import Graph, WeightedGraph

CONFIG = ClusterConfig(num_machines=4)

#: every registered spec with an incremental update hook — auto-covers
#: hooks added later
UPDATE_SPECS = [spec.name for spec in registry.specs()
                if spec.update is not None]


def _build_graph(input_kind: str, seed: int = 11):
    rng = random.Random(seed)
    if input_kind == "weighted":
        graph = WeightedGraph(24)
        while graph.num_edges < 60:
            u, v = rng.sample(range(24), 2)
            graph.add_edge(u, v, round(rng.random() * 10, 3))
        return graph
    return erdos_renyi_gnm(24, 60, seed=seed)


def _batch(graph, rng):
    """A mixed mutation batch: 3 deletions, 2 insertions."""
    edges = list(graph.edges())
    rng.shuffle(edges)
    deletions = [(e[0], e[1]) for e in edges[:3]]
    insertions = []
    while len(insertions) < 2:
        u, v = rng.sample(range(graph.num_vertices), 2)
        if not graph.has_edge(u, v) and (u, v) not in deletions:
            if isinstance(graph, WeightedGraph):
                insertions.append((*sorted((u, v)), round(rng.random(), 3)))
            else:
                insertions.append(tuple(sorted((u, v))))
    return insertions, deletions


def _absent_edge(graph):
    for a in graph.vertices():
        for b in graph.vertices():
            if a < b and not graph.has_edge(a, b):
                return a, b
    raise AssertionError("graph is complete")


def _signature(result):
    """The deterministic identity of a run's output."""
    signature = {"summary": result.summary}
    for field in ("independent_set", "matching", "forest", "labels",
                  "scores", "endpoints"):
        value = getattr(result.output, field, None)
        if value is not None:
            signature[field] = value
    return signature


class TestIncrementalEqualsScratch:
    @pytest.mark.parametrize("name", UPDATE_SPECS)
    def test_apply_batch_then_run_matches_from_scratch(self, name):
        spec = registry.get(name)
        session = Session(CONFIG)
        graph = _build_graph(spec.input_kind)
        handle = session.load("g", graph)
        session.run(name, "g", seed=1)
        rng = random.Random(99)
        insertions, deletions = _batch(graph, rng)
        handle.apply_batch(insertions=insertions, deletions=deletions)
        patched = session.run(name, "g", seed=1)
        scratch = Session(CONFIG).run(name, graph, seed=1)
        assert _signature(patched) == _signature(scratch)
        stats = session.stats
        assert stats.incremental_updates == 1
        assert stats.full_prepares == 1  # the cold first run
        assert stats.preprocessing_misses == 2

    @pytest.mark.parametrize("name", UPDATE_SPECS)
    def test_raw_graph_mutation_takes_the_incremental_path(self, name):
        """No handle, no apply_batch: in-place mutation of a raw graph is
        picked up through the fingerprint memo's lineage."""
        spec = registry.get(name)
        session = Session(CONFIG)
        graph = _build_graph(spec.input_kind)
        session.run(name, graph, seed=1)
        insertions, deletions = _batch(graph, random.Random(5))
        for edge in deletions:
            graph.remove_edge(edge[0], edge[1])
        for edge in insertions:
            graph.add_edge(*edge)
        patched = session.run(name, graph, seed=1)
        scratch = Session(CONFIG).run(name, graph, seed=1)
        assert _signature(patched) == _signature(scratch)
        assert session.stats.incremental_updates == 1

    def test_repeated_batches_chain_across_generations(self):
        session = Session(CONFIG)
        graph = _build_graph("graph")
        handle = session.load("g", graph)
        session.run("mis", "g", seed=1)
        rng = random.Random(17)
        for _ in range(3):
            insertions, deletions = _batch(graph, rng)
            handle.apply_batch(insertions=insertions, deletions=deletions)
            session.run("mis", "g", seed=1)
        assert session.stats.incremental_updates == 3
        assert session.stats.full_prepares == 1
        scratch = Session(CONFIG).run("mis", graph, seed=1)
        assert (session.run("mis", "g", seed=1).output.independent_set
                == scratch.output.independent_set)

    def test_one_batch_patches_several_algorithms(self):
        """The lineage is per-graph, not per-spec: one mutation batch lets
        every hooked spec with a cached ancestor patch independently."""
        session = Session(CONFIG)
        graph = _build_graph("graph")
        handle = session.load("g", graph)
        session.run("mis", "g", seed=1)
        session.run("matching", "g", seed=1)
        session.run("components", "g", seed=1)
        insertions, deletions = _batch(graph, random.Random(7))
        handle.apply_batch(insertions=insertions, deletions=deletions)
        for name in ("mis", "matching", "components"):
            patched = session.run(name, "g", seed=1)
            scratch = Session(CONFIG).run(name, graph, seed=1)
            assert _signature(patched) == _signature(scratch), name
        assert session.stats.incremental_updates == 3


class TestFallbacks:
    def test_journal_truncation_falls_back_to_full_prepare(self):
        session = Session(CONFIG)
        graph = _build_graph("graph")
        graph.journal_limit = 2
        handle = session.load("g", graph)
        session.run("mis", "g", seed=1)
        edges = list(graph.edges())
        handle.apply_batch(deletions=[(e[0], e[1]) for e in edges[:6]])
        result = session.run("mis", "g", seed=1)
        stats = session.stats
        assert stats.incremental_updates == 0
        assert stats.full_prepares == 2
        scratch = Session(CONFIG).run("mis", graph, seed=1)
        assert result.output.independent_set == scratch.output.independent_set

    def test_spec_without_hook_falls_back(self):
        assert registry.get("matching-phases").update is None
        session = Session(CONFIG)
        graph = _build_graph("graph")
        handle = session.load("g", graph)
        session.run("matching-phases", "g", seed=1)
        insertions, deletions = _batch(graph, random.Random(3))
        handle.apply_batch(insertions=insertions, deletions=deletions)
        result = session.run("matching-phases", "g", seed=1)
        assert session.stats.incremental_updates == 0
        assert session.stats.full_prepares == 2
        scratch = Session(CONFIG).run("matching-phases", graph, seed=1)
        assert result.output.matching == scratch.output.matching

    def test_vertex_addition_falls_back(self):
        session = Session(CONFIG)
        graph = _build_graph("graph")
        session.load("g", graph)
        session.run("mis", "g", seed=1)
        new = graph.add_vertex()
        graph.add_edge(new, 0)
        result = session.run("mis", "g", seed=1)
        assert session.stats.incremental_updates == 0
        scratch = Session(CONFIG).run("mis", graph, seed=1)
        assert result.output.independent_set == scratch.output.independent_set

    def test_interleaved_add_remove_of_same_edge(self):
        session = Session(CONFIG)
        graph = _build_graph("graph")
        handle = session.load("g", graph)
        session.run("mis", "g", seed=1)
        u, v = next(iter(graph.edges()))
        graph.remove_edge(u, v)
        graph.add_edge(u, v)
        graph.remove_edge(u, v)   # net effect: one deletion
        handle.apply_batch()      # no-op batch, picks up the journal
        result = session.run("mis", "g", seed=1)
        assert session.stats.incremental_updates == 1
        scratch = Session(CONFIG).run("mis", graph, seed=1)
        assert result.output.independent_set == scratch.output.independent_set

    def test_weight_change_delta_patches_msf(self):
        session = Session(CONFIG)
        graph = _build_graph("weighted")
        handle = session.load("w", graph)
        before = session.run("msf", "w", seed=1)
        in_forest = set(before.output.forest)
        u, v = next((u, v) for u, v, _w in graph.edges()
                    if (u, v) not in in_forest)
        handle.apply_batch(insertions=[(u, v, 1e-9)])  # now globally lightest
        assert graph.weight(u, v) == 1e-9
        result = session.run("msf", "w", seed=1)
        assert session.stats.incremental_updates == 1
        scratch = Session(CONFIG).run("msf", graph, seed=1)
        assert result.output.forest == scratch.output.forest
        assert result.summary == scratch.summary
        # the weight change actually reached the patched adjacency: the
        # now-lightest edge must have entered the forest
        assert (u, v) in set(result.output.forest)


class TestIsolation:
    def test_patching_never_perturbs_the_ancestor_entry(self):
        """After an incremental update, the *original* artifact still
        serves a content-equal twin of the original graph, bit-for-bit."""
        session = Session(CONFIG)
        graph = erdos_renyi_gnm(24, 60, seed=11)
        twin = erdos_renyi_gnm(24, 60, seed=11)
        handle = session.load("g", graph)
        session.run("mis", "g", seed=1)
        warm = session.run("mis", "g", seed=1)  # a pre-mutation cache hit
        edges = list(graph.edges())
        handle.apply_batch(deletions=[(e[0], e[1]) for e in edges[:4]])
        session.run("mis", "g", seed=1)
        served = session.run("mis", twin, seed=1)
        assert served.preprocessing_reused  # the old entry, untouched
        assert served.output.independent_set == warm.output.independent_set
        # byte-identical simulated metrics: the artifact did not change
        assert served.metrics == warm.metrics

    def test_lru_eviction_of_parent_keeps_child_serving(self):
        """Evicting the ancestor cache entry must not break the derived
        child (the sealed parent store stays alive through the child)."""
        session = Session(CONFIG)
        graph = erdos_renyi_gnm(24, 60, seed=12)
        handle = session.load("g", graph)
        session.run("mis", "g", seed=1)
        edges = list(graph.edges())
        handle.apply_batch(deletions=[(e[0], e[1]) for e in edges[:2]])
        session.run("mis", "g", seed=1)
        assert session.stats.incremental_updates == 1
        # shrink the budget so the next (tiny) insertion evicts exactly
        # the oldest entry — the patched entry's parent
        session.max_cache_bytes = session.cache_bytes - 1
        tiny = erdos_renyi_gnm(6, 5, seed=1)
        session.run("mis", tiny, seed=1)  # insertion triggers eviction
        assert session.stats.preprocessing_evictions == 1
        # the child's entry still serves, reading through the live parent
        again = session.run("mis", "g", seed=1)
        assert again.preprocessing_reused
        scratch = Session(CONFIG).run("mis", graph, seed=1)
        assert again.output.independent_set == scratch.output.independent_set


class TestBatchValidation:
    def test_malformed_batch_leaves_graph_untouched(self):
        """apply_batch is all-or-nothing: validation happens before any
        mutation, so a bad row can never leave a half-applied batch."""
        session = Session(CONFIG)
        graph = _build_graph("graph")
        handle = session.load("g", graph)
        version = graph.content_version
        fingerprint = handle.fingerprint
        edges = list(graph.edges())
        with pytest.raises(ValueError):  # duplicate deletion row
            handle.apply_batch(deletions=[edges[0], edges[1], edges[0]])
        with pytest.raises(KeyError):  # absent edge
            handle.apply_batch(deletions=[_absent_edge(graph)])
        with pytest.raises(ValueError):
            handle.apply_batch(insertions=[(1, 1)])  # self loop
        with pytest.raises(IndexError):
            handle.apply_batch(insertions=[(0, 10_000)])
        assert graph.content_version == version
        assert handle.fingerprint == fingerprint
        assert sorted(graph.edges()) == sorted(edges)

    def test_weighted_insertions_require_triples(self):
        session = Session(CONFIG)
        graph = _build_graph("weighted")
        handle = session.load("w", graph)
        with pytest.raises(ValueError):
            handle.apply_batch(insertions=[(0, 1)])  # missing weight
        assert graph.content_version == handle.content_version

    def test_duplicate_deletion_rejected_up_front(self):
        session = Session(CONFIG)
        graph = _build_graph("graph")
        handle = session.load("g", graph)
        u, v = next(iter(graph.edges()))
        before = graph.num_edges
        with pytest.raises(ValueError):
            handle.apply_batch(deletions=[(u, v), (v, u)])
        assert graph.num_edges == before


class TestHandleReload:
    def test_reregistering_a_handle_moves_the_name(self):
        session = Session(CONFIG)
        graph = _build_graph("graph")
        handle = session.load("a", graph)
        same = session.load("b", handle)
        assert same is handle
        assert handle.name == "b"
        assert session.graphs() == ["b"]  # "a" does not linger
        with pytest.raises(KeyError):
            session.handle("a")


class TestPrepareAPI:
    def test_prepare_warms_and_counts(self):
        session = Session(CONFIG)
        graph = _build_graph("graph")
        handle = session.load("g", graph)
        assert session.prepare("mis", "g", seed=1) is False  # cold
        assert session.prepare("mis", "g", seed=1) is True   # warm
        assert session.stats.full_prepares == 1
        assert session.stats.preprocessing_hits == 1
        assert session.stats.runs == 0
        result = session.run("mis", "g", seed=1)
        assert result.preprocessing_reused
        insertions, deletions = _batch(graph, random.Random(1))
        handle.apply_batch(insertions=insertions, deletions=deletions)
        assert session.prepare("mis", "g", seed=1) is False
        assert session.stats.incremental_updates == 1

    def test_stats_counters_round_trip(self):
        stats = SessionStats(incremental_updates=2, full_prepares=3)
        merged = SessionStats.sum([stats, stats])
        assert merged.incremental_updates == 4
        assert merged.full_prepares == 6
        assert merged.to_dict()["incremental_updates"] == 4
