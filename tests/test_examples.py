"""Smoke tests: every example script runs to completion.

Examples double as integration tests of the public API; each one contains
its own assertions (cluster purity, approximation bounds, fault-identical
outputs), so a clean exit is a meaningful check.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples should print their findings"
