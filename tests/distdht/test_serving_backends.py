"""Serving over real backends: socket failover and shm write-once fronting."""

import pytest

from repro.ampc.cluster import ClusterConfig
from repro.distdht.sockets import DHTNodeServer
from repro.graph.generators import erdos_renyi_gnm
from repro.serve import GraphService, ProcessGraphService

CONFIG = ClusterConfig(num_machines=4)
GRAPH = erdos_renyi_gnm(30, 60, seed=2)


class TestGraphServiceBackends:
    def test_shm_backend_results_match_sim(self):
        with GraphService(CONFIG, workers=2) as sim_service:
            sim_service.load("g", GRAPH)
            baseline = sim_service.query("mis", "g", seed=4, timeout=300)
        with GraphService(CONFIG, workers=2, backend="shm") as service:
            service.load("g", GRAPH)
            observed = service.query("mis", "g", seed=4, timeout=300)
            assert service.stats()["backend"] == "shm"
        assert observed.output.independent_set \
            == baseline.output.independent_set
        assert observed.metrics == baseline.metrics

    def test_socket_backend_survives_a_killed_node_mid_query(self):
        """The acceptance scenario, through the full serving stack: a
        replication-2 cluster loses a node between queries (its live
        connections severed, as a crash would); later queries read every
        record through replica failover and return identical results."""
        with DHTNodeServer() as node_a, DHTNodeServer() as node_b:
            with GraphService(
                    CONFIG, workers=2, backend="socket",
                    dht_nodes=[node_a.address, node_b.address],
                    replication=2) as service:
                service.load("g", GRAPH)
                warm = service.query("mis", "g", seed=4, timeout=300)
                node_a.close()  # kills pooled, established connections
                survived = service.query("mis", "g", seed=4, timeout=300)
                assert survived.output.independent_set \
                    == warm.output.independent_set
                assert survived.preprocessing_reused
                # a cold query (full prepare: writes + reads) also works
                # against the surviving replica
                cold = service.query("mis", "g", seed=9, timeout=300)
                assert cold.summary["output_size"] >= 1

    def test_socket_backend_without_replication_fails_hard(self):
        """replication=1 is the contrast case: losing the only replica
        makes reads error rather than silently degrade."""
        with DHTNodeServer() as node_a, DHTNodeServer() as node_b:
            with GraphService(
                    CONFIG, workers=2, backend="socket",
                    dht_nodes=[node_a.address, node_b.address],
                    replication=1) as service:
                service.load("g", GRAPH)
                service.query("mis", "g", seed=4, timeout=300)
                node_a.close()
                node_b.close()
                with pytest.raises(ConnectionError):
                    service.query("mis", "g", seed=11, timeout=300)


class TestProcessPoolSharedMemoryFronting:
    def test_one_publication_feeds_all_workers(self):
        """The acceptance scenario: on the shm backend, N workers serving
        one graph share a single published copy — ship-once becomes
        write-once (``graphs_shipped == 1``)."""
        with ProcessGraphService(CONFIG, processes=2, backend="shm",
                                 spill_threshold=1) as service:
            service.load("g", GRAPH)
            pending = [service.submit("mis", "g", seed=seed)
                       for seed in range(6)]
            results = [p.result(timeout=300) for p in pending]
            stats = service.stats()
            assert stats["backend"] == "shm"
            assert stats["graphs_shipped"] == 1
            assert stats["rebalances"] > 0  # both workers actually served
            baseline = results[0].output.independent_set
            assert all(r.output.independent_set == baseline
                       for r in results if r.seed == results[0].seed)

    def test_respawned_worker_reuses_the_publication(self):
        with ProcessGraphService(CONFIG, processes=2, backend="shm",
                                 spill_threshold=1) as service:
            service.load("g", GRAPH)
            for seed in range(4):
                service.query("mis", "g", seed=seed, timeout=300)
            assert service.stats()["graphs_shipped"] == 1
            victim = service._clients[0]
            victim.process.terminate()
            victim.process.join(30)
            victim.reader.join(30)
            assert not victim.alive
            result = service.query("mis", "g", seed=0, timeout=300)
            assert result is not None
            # the replacement worker resolved the same shared blob: no
            # second publication
            assert service.stats()["graphs_shipped"] == 1

    def test_update_republishes_changed_content(self):
        graph = erdos_renyi_gnm(30, 60, seed=2)
        with ProcessGraphService(CONFIG, processes=2, backend="shm",
                                 spill_threshold=1) as service:
            service.load("g", graph)
            service.query("mis", "g", seed=0, timeout=300)
            assert service.stats()["graphs_shipped"] == 1
            edge = sorted(graph.edges())[0]
            service.update("g", deletions=[tuple(edge[:2])])
            service.query("mis", "g", seed=0, timeout=300)
            # mutated content is a new publication (the stale blob was
            # invalidated), not a silent reuse of old bytes
            assert service.stats()["graphs_shipped"] == 2

    def test_sim_mode_still_ships_per_worker(self):
        with ProcessGraphService(CONFIG, processes=2) as service:
            service.load("g", GRAPH)
            service.query("mis", "g", seed=0, timeout=300)
            stats = service.stats()
            assert stats["backend"] == "sim"
            assert stats["graphs_shipped"] >= 1
