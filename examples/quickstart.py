"""Quickstart: the four core AMPC algorithms on one small graph.

Run with::

    python examples/quickstart.py

Builds a small social-network-like graph and runs the AMPC maximal
independent set, maximal matching, minimum spanning forest and connected
components — each in a constant number of adaptive rounds — printing the
outputs and the execution metrics (shuffles, KV traffic, simulated time)
that the paper's evaluation revolves around.
"""

from repro.ampc import ClusterConfig
from repro.core import (
    ampc_connected_components,
    ampc_maximal_matching,
    ampc_mis,
    ampc_msf,
)
from repro.graph import barabasi_albert_graph, degree_weighted
from repro.sequential import (
    is_maximal_independent_set,
    is_maximal_matching,
    is_spanning_forest,
)


def main():
    # A 500-vertex preferential-attachment graph: hubs and a heavy tail,
    # like the social networks in the paper's Table 2.
    graph = barabasi_albert_graph(500, attach=3, seed=7)
    print(f"input graph: {graph.num_vertices} vertices, "
          f"{graph.num_edges} edges, max degree {graph.max_degree()}")

    # A simulated cluster: 10 machines x 72 hyper-threads, RDMA-backed DHT,
    # with the paper's caching + multithreading optimizations enabled.
    config = ClusterConfig(num_machines=10, threads_per_machine=72)

    print("\n--- Maximal Independent Set (Section 5.3) ---")
    mis = ampc_mis(graph, config=config, seed=1)
    assert is_maximal_independent_set(graph, mis.independent_set)
    print(f"|MIS| = {len(mis.independent_set)}  "
          f"rounds = {mis.rounds}  shuffles = {mis.metrics.shuffles}")
    print(f"KV reads = {mis.metrics.kv_reads:,}  "
          f"cache hit rate = {mis.metrics.cache_hit_rate():.1%}")
    print(f"simulated time = {mis.metrics.simulated_time_s:.3f}s "
          f"({dict((k, round(v, 3)) for k, v in mis.metrics.phases.items())})")

    print("\n--- Maximal Matching (Theorem 2) ---")
    matching = ampc_maximal_matching(graph, config=config, seed=1)
    assert is_maximal_matching(graph, matching.matching)
    print(f"|M| = {len(matching.matching)}  rounds = {matching.rounds}  "
          f"shuffles = {matching.metrics.shuffles}")

    print("\n--- Minimum Spanning Forest (Theorem 1) ---")
    weighted = degree_weighted(graph)  # the paper's deg(u)+deg(v) weights
    msf = ampc_msf(weighted, config=config, seed=1)
    assert is_spanning_forest(graph, msf.forest)
    total = sum(weighted.weight(u, v) for u, v in msf.forest)
    print(f"|F| = {len(msf.forest)}  weight = {total:.0f}  "
          f"shuffles = {msf.metrics.shuffles} (Table 3 says 5)")
    print(f"Prim-discovered edges = {msf.prim_edges}, "
          f"contracted graph had {msf.contracted_vertices} vertices")

    print("\n--- Connected Components (Theorem 1) ---")
    components = ampc_connected_components(graph, config=config, seed=1)
    print(f"#components = {len(set(components.labels))}  "
          f"forest-connectivity iterations = {components.iterations}")


if __name__ == "__main__":
    main()
