"""DoFns and the per-machine execution context.

A :class:`DoFn` transforms elements of a PCollection; :meth:`DoFn.process`
is called once per element and yields zero or more outputs.  The
:class:`MachineContext` passed alongside identifies the executing machine
and is the *only* way a DoFn may touch a DHT store — every lookup and write
goes through it so that the cluster can charge latency, bandwidth and the
per-machine AMPC communication budget.

Two batching seams keep the simulator fast without changing any charged
number:

* :meth:`MachineContext.lookup_many` / :meth:`MachineContext.write_many`
  aggregate shard routing and :class:`~repro.ampc.cluster.MachineWork`
  accounting over a batch of keys — the per-query batching the paper (and
  the MPC connectivity line of work) uses to amortize KV round trips.
  They charge exactly what the equivalent sequence of single calls would.
* A DoFn that knows its whole partition's work up front may override
  :attr:`DoFn.process_batch`; ``par_do`` then makes one call per machine
  instead of one per element.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence, Tuple

from repro.ampc.cluster import Cluster, MachineWork
from repro.ampc.cost_model import estimate_bytes
from repro.ampc.dht import DHTStore


class MachineContext:
    """Execution context of one machine within one ParDo stage."""

    def __init__(self, machine_id: int, cluster: Cluster):
        self.machine_id = machine_id
        self.cluster = cluster
        self.work = MachineWork()

    # -- KV-store access (the AMPC extension) ----------------------------

    def lookup(self, store: DHTStore, key: Any) -> Any:
        """Synchronous KV read; returns None for missing keys."""
        value, value_bytes = store.lookup_with_size(key)
        work = self.work
        work.kv_reads += 1
        work.kv_read_bytes += (
            8 if type(key) is int else estimate_bytes(key)
        ) + value_bytes
        return value

    def lookup_many(self, store: DHTStore, keys: Sequence[Any]) -> List[Any]:
        """Batched KV reads: one routing/accounting pass for many keys.

        Returns the values in key order (None for misses).  Charges are
        identical to the equivalent :meth:`lookup` sequence — same reads,
        same bytes, same per-shard contention counts.
        """
        if not isinstance(keys, (list, tuple)):
            keys = list(keys)
        values, value_bytes = store.lookup_many(keys)
        key_bytes = 0
        for key in keys:
            key_bytes += 8 if type(key) is int else estimate_bytes(key)
        work = self.work
        work.kv_reads += len(values)
        work.kv_read_bytes += key_bytes + value_bytes
        return values

    def write(self, store: DHTStore, key: Any, value: Any) -> None:
        """KV write into the current round's output store."""
        value_bytes = store.write(key, value)
        work = self.work
        work.kv_writes += 1
        work.kv_write_bytes += (
            8 if type(key) is int else estimate_bytes(key)
        ) + value_bytes

    def write_many(self, store: DHTStore,
                   items: Sequence[Tuple[Any, Any]]) -> None:
        """Batched KV writes; charge-identical to a :meth:`write` loop."""
        if not isinstance(items, (list, tuple)):
            items = list(items)
        value_bytes = store.write_many(items)
        key_bytes = 0
        for key, _ in items:
            key_bytes += 8 if type(key) is int else estimate_bytes(key)
        work = self.work
        work.kv_writes += len(items)
        work.kv_write_bytes += key_bytes + value_bytes

    def note_cache_hit(self) -> None:
        """Record that a per-machine cache answered instead of the DHT."""
        self.work.cache_hits += 1

    def charge_compute(self, operations: int) -> None:
        """Charge extra elementary operations beyond the per-element default."""
        self.work.compute_ops += operations

    @property
    def caching_enabled(self) -> bool:
        return self.cluster.config.caching


class DoFn:
    """Base class for per-element transformations.

    Subclasses override :meth:`process`; :meth:`start_machine` runs once per
    machine per stage and is where per-machine state (such as the caching
    optimization's table) is created.
    """

    #: Optional bulk hook.  A subclass whose per-element work needs no
    #: adaptivity (every KV key is known up front — e.g. a store-writing
    #: ParDo) may set this to a method ``process_batch(elements, ctx)``
    #: returning the stage's outputs; ``par_do`` then calls it once per
    #: machine with the whole partition instead of once per element.
    process_batch = None

    def start_machine(self, ctx: MachineContext) -> None:
        """Per-machine setup hook (default: nothing)."""

    def process(self, element: Any, ctx: MachineContext) -> Optional[Iterable[Any]]:
        raise NotImplementedError


class _CallableDoFn(DoFn):
    """Adapter for the map/filter/flat_map conveniences.

    ``par_do`` recognizes this type and runs the wrapped callable through
    a list comprehension per machine, skipping the generator adapter; the
    ``process`` implementation below is the semantic reference (and the
    path taken when a _CallableDoFn is used directly).
    """

    def __init__(self, fn, mode: str):
        self._fn = fn
        self._mode = mode

    def process(self, element, ctx):
        if self._mode == "map":
            yield self._fn(element)
        elif self._mode == "flat_map":
            yield from self._fn(element)
        elif self._mode == "filter":
            if self._fn(element):
                yield element
        else:  # pragma: no cover - internal invariant
            raise AssertionError(f"unknown mode {self._mode}")
