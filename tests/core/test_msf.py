"""Tests for the AMPC MSF pipelines and the Boruvka baseline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ampc import ClusterConfig
from repro.baselines import mpc_boruvka_msf
from repro.core import ampc_msf, ampc_msf_theory
from repro.graph import WeightedGraph, cycle_graph, disjoint_union, path_graph
from repro.graph.generators import (
    barabasi_albert_graph,
    degree_weighted,
    erdos_renyi_gnm,
    random_weighted,
)
from repro.sequential import is_spanning_forest, kruskal_msf

CONFIG = ClusterConfig(num_machines=4)


class TestPracticalMSF:
    def test_matches_kruskal(self):
        for seed in range(5):
            graph = random_weighted(erdos_renyi_gnm(40, 100, seed=seed),
                                    seed=seed)
            result = ampc_msf(graph, seed=seed, config=CONFIG)
            assert result.forest == sorted(kruskal_msf(graph))

    def test_exactly_five_shuffles(self):
        """Table 3: AMPC MSF uses 5 shuffles on every input."""
        for seed in range(3):
            graph = random_weighted(erdos_renyi_gnm(50, 120, seed=seed),
                                    seed=seed)
            result = ampc_msf(graph, seed=seed, config=CONFIG)
            assert result.metrics.shuffles == 5

    def test_tied_weights_degree_weighted(self):
        """The paper's MSF weighting (deg(u) + deg(v)) is full of ties."""
        graph = degree_weighted(barabasi_albert_graph(120, 3, seed=1))
        result = ampc_msf(graph, seed=1, config=CONFIG)
        assert result.forest == sorted(kruskal_msf(graph))

    def test_disconnected_graph(self):
        base = disjoint_union([cycle_graph(6), path_graph(5), cycle_graph(4)])
        graph = random_weighted(base, seed=2)
        result = ampc_msf(graph, seed=2, config=CONFIG)
        assert result.forest == sorted(kruskal_msf(graph))
        assert is_spanning_forest(graph.unweighted(), result.forest)

    def test_empty_graph(self):
        result = ampc_msf(WeightedGraph(5), seed=0, config=CONFIG)
        assert result.forest == []

    def test_contraction_shrinks(self):
        graph = random_weighted(erdos_renyi_gnm(200, 600, seed=3), seed=3)
        result = ampc_msf(graph, seed=3, config=CONFIG)
        assert result.contracted_vertices < graph.num_vertices // 2

    def test_phase_breakdown(self):
        graph = random_weighted(erdos_renyi_gnm(40, 100, seed=4), seed=4)
        result = ampc_msf(graph, seed=4, config=CONFIG)
        for phase in ("SortGraph", "KV-Write", "PrimSearch", "PointerJump",
                      "Contract"):
            assert phase in result.metrics.phases.seconds

    def test_pointer_depth_shallow(self):
        """The paper observed pointer chains of length <= 33."""
        graph = random_weighted(erdos_renyi_gnm(300, 900, seed=5), seed=5)
        result = ampc_msf(graph, seed=5, config=CONFIG)
        assert result.max_pointer_depth <= 40

    def test_budget_controls_search(self):
        graph = random_weighted(erdos_renyi_gnm(100, 300, seed=6), seed=6)
        small = ampc_msf(graph, seed=6, config=CONFIG, search_budget=2)
        large = ampc_msf(graph, seed=6, config=CONFIG, search_budget=50)
        assert small.forest == large.forest == sorted(kruskal_msf(graph))
        assert small.prim_edges <= large.prim_edges


class TestTheoryMSF:
    def test_sparse_path_matches_kruskal(self):
        for seed in range(3):
            # Sparse: m < n^(1 + eps/2) triggers ternarization.
            graph = random_weighted(erdos_renyi_gnm(60, 90, seed=seed),
                                    seed=seed)
            result = ampc_msf_theory(graph, seed=seed, config=CONFIG,
                                     in_memory_threshold=20)
            assert result.forest == sorted(kruskal_msf(graph))

    def test_dense_path_matches_kruskal(self):
        graph = random_weighted(erdos_renyi_gnm(20, 150, seed=1), seed=1)
        result = ampc_msf_theory(graph, seed=1, config=CONFIG,
                                 in_memory_threshold=16)
        assert result.forest == sorted(kruskal_msf(graph))

    def test_tied_weights_through_ternarization(self):
        graph = degree_weighted(barabasi_albert_graph(80, 3, seed=2))
        result = ampc_msf_theory(graph, seed=2, config=CONFIG,
                                 in_memory_threshold=20)
        assert result.forest == sorted(kruskal_msf(graph))

    def test_empty(self):
        result = ampc_msf_theory(WeightedGraph(3), seed=0, config=CONFIG)
        assert result.forest == []


class TestBoruvka:
    def test_matches_kruskal(self):
        for seed in range(4):
            graph = random_weighted(erdos_renyi_gnm(50, 140, seed=seed),
                                    seed=seed)
            result = mpc_boruvka_msf(graph, seed=seed, config=CONFIG,
                                     in_memory_threshold=16)
            assert sorted(result.forest) == sorted(kruskal_msf(graph))

    def test_tied_weights(self):
        graph = degree_weighted(barabasi_albert_graph(100, 3, seed=3))
        result = mpc_boruvka_msf(graph, seed=3, config=CONFIG,
                                 in_memory_threshold=16)
        assert sorted(result.forest) == sorted(kruskal_msf(graph))

    def test_three_shuffles_per_phase(self):
        graph = random_weighted(erdos_renyi_gnm(100, 300, seed=4), seed=4)
        result = mpc_boruvka_msf(graph, seed=4, config=CONFIG,
                                 in_memory_threshold=16)
        assert result.phases >= 1
        # 3 shuffles per phase, plus one final gather.
        assert result.metrics.shuffles == 3 * result.phases + 1

    def test_many_more_shuffles_than_ampc(self):
        """Table 3: MPC MSF uses 33-84 shuffles vs AMPC's 5."""
        graph = random_weighted(erdos_renyi_gnm(150, 500, seed=5), seed=5)
        ampc = ampc_msf(graph, seed=5, config=CONFIG)
        mpc = mpc_boruvka_msf(graph, seed=5, config=CONFIG,
                              in_memory_threshold=16)
        assert mpc.metrics.shuffles > 3 * ampc.metrics.shuffles


@given(
    st.integers(min_value=2, max_value=25),
    st.integers(min_value=0, max_value=500),
)
@settings(max_examples=20, deadline=None)
def test_msf_property(n, seed):
    m = min(3 * n, n * (n - 1) // 2)
    graph = random_weighted(erdos_renyi_gnm(n, m, seed=seed), seed=seed)
    expected = sorted(kruskal_msf(graph))
    result = ampc_msf(graph, seed=seed, config=ClusterConfig(num_machines=3))
    assert result.forest == expected
