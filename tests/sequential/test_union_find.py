"""Tests for the disjoint-set forest."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sequential import UnionFind


def test_initial_state():
    uf = UnionFind(5)
    assert uf.num_sets == 5
    assert all(uf.find(i) == i for i in range(5))


def test_union_merges():
    uf = UnionFind(4)
    assert uf.union(0, 1)
    assert uf.connected(0, 1)
    assert not uf.connected(0, 2)
    assert uf.num_sets == 3


def test_union_idempotent():
    uf = UnionFind(3)
    assert uf.union(0, 1)
    assert not uf.union(1, 0)
    assert uf.num_sets == 2


def test_transitive_connectivity():
    uf = UnionFind(5)
    uf.union(0, 1)
    uf.union(1, 2)
    uf.union(3, 4)
    assert uf.connected(0, 2)
    assert not uf.connected(2, 3)


def test_component_labels_are_min_elements():
    uf = UnionFind(6)
    uf.union(5, 3)
    uf.union(3, 1)
    uf.union(0, 2)
    labels = uf.component_labels()
    assert labels == [0, 1, 0, 1, 4, 1]


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        UnionFind(-1)


@given(
    st.integers(min_value=1, max_value=40),
    st.lists(st.tuples(st.integers(0, 39), st.integers(0, 39)), max_size=80),
)
@settings(max_examples=40, deadline=None)
def test_union_find_matches_naive_partition(n, pairs):
    """Compare with a brute-force partition refinement."""
    uf = UnionFind(n)
    naive = [{i} for i in range(n)]
    membership = list(range(n))
    for a, b in pairs:
        if a >= n or b >= n:
            continue
        uf.union(a, b)
        ra, rb = membership[a], membership[b]
        if ra != rb:
            naive[ra] |= naive[rb]
            for x in naive[rb]:
                membership[x] = ra
            naive[rb] = set()
    for i in range(n):
        for j in range(n):
            assert uf.connected(i, j) == (membership[i] == membership[j])
