"""Tests for the AMPC and MPC runtimes."""

import pytest

from repro.ampc import AMPCRuntime, ClusterConfig, StoreSealedError
from repro.mpc import MPCRuntime


class TestAMPCRuntime:
    def test_write_store_seals_and_meters(self):
        runtime = AMPCRuntime(config=ClusterConfig(num_machines=4))
        store = runtime.new_store("graph")
        data = runtime.pipeline.from_items([(i, (i, i + 1)) for i in range(10)])
        runtime.write_store(data, store, key_fn=lambda e: e[0],
                            value_fn=lambda e: e[1])
        assert store.sealed
        assert len(store) == 10
        assert runtime.metrics.kv_writes == 10
        assert runtime.metrics.kv_write_bytes > 0
        # A KV write stage is not a shuffle.
        assert runtime.metrics.shuffles == 0

    def test_next_round_seals_round_stores(self):
        runtime = AMPCRuntime(config=ClusterConfig(num_machines=2))
        store = runtime.new_store()
        store.write("a", 1)
        assert runtime.next_round() == 1
        with pytest.raises(StoreSealedError):
            store.write("b", 2)
        assert runtime.metrics.rounds == 1

    def test_strict_rounds_forbid_same_round_reads(self):
        runtime = AMPCRuntime(config=ClusterConfig(num_machines=2),
                              strict_rounds=True)
        store = runtime.new_store()
        store.write("a", 1)
        with pytest.raises(StoreSealedError):
            store.lookup("a")
        runtime.next_round()
        assert store.lookup("a") == 1

    def test_unsealed_write_store_allows_more_writes(self):
        runtime = AMPCRuntime(config=ClusterConfig(num_machines=2))
        store = runtime.new_store()
        data = runtime.pipeline.from_items([(1, "x")])
        runtime.write_store(data, store, key_fn=lambda e: e[0],
                            value_fn=lambda e: e[1], seal=False)
        store.write(2, "y")
        assert len(store) == 2


class TestMPCRuntime:
    def test_round_counter(self):
        runtime = MPCRuntime(config=ClusterConfig(num_machines=2))
        assert runtime.next_round() == 1
        assert runtime.next_round() == 2

    def test_run_in_memory_charges_gather_shuffle(self):
        runtime = MPCRuntime(config=ClusterConfig(num_machines=4))
        data = runtime.pipeline.from_items(range(100))
        total = runtime.run_in_memory(data, solver=sum)
        assert total == sum(range(100))
        assert runtime.metrics.shuffles == 1
        assert runtime.metrics.simulated_time_s > 0

    def test_run_in_memory_explicit_ops(self):
        runtime = MPCRuntime(config=ClusterConfig(num_machines=2))
        data = runtime.pipeline.from_items(range(10))
        runtime.run_in_memory(data, solver=len, operations_estimate=10**6)
        model = runtime.config.cost_model
        assert runtime.metrics.simulated_time_s >= 10**6 / model.compute_ops_per_s


class TestNewStoreUniquification:
    def test_reusing_a_name_suffixes_until_free(self):
        runtime = AMPCRuntime(config=ClusterConfig(num_machines=2))
        assert runtime.new_store("x").name == "x"
        assert runtime.new_store("x-1").name == "x-1"
        again = runtime.new_store("x")
        assert again.name not in ("x", "x-1")
        assert again.name.startswith("x-")

    def test_suffix_collision_with_existing_name(self):
        """Regression: f"{name}-{len(stores)}" could itself collide."""
        runtime = AMPCRuntime(config=ClusterConfig(num_machines=2))
        runtime.new_store("x-2")
        runtime.new_store("x")
        # len(stores) == 2 here, so the old scheme renamed this to the
        # already-taken "x-2" and crashed.
        third = runtime.new_store("x")
        assert third.name not in ("x", "x-2")
        names = [store.name for store in runtime.dht.stores()]
        assert len(names) == len(set(names))

    def test_repeated_reuse_stays_unique(self):
        runtime = AMPCRuntime(config=ClusterConfig(num_machines=2))
        for _ in range(6):
            runtime.new_store("level")
        names = [store.name for store in runtime.dht.stores()]
        assert len(names) == len(set(names)) == 6
