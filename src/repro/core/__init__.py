"""The paper's contribution: AMPC graph algorithms in O(1) adaptive rounds.

Public entry points (each returns a result object carrying the output and
the full :class:`repro.ampc.Metrics` of the execution):

* :func:`ampc_mis` — maximal independent set (Section 5.3 implementation of
  the O(1)-round algorithm of Behnezhad et al. 2019).
* :func:`ampc_maximal_matching` — Theorem 2: the O(1)-round vertex query
  process (part 2) and :func:`ampc_matching_phases` for the
  O(log log n)-round Algorithm 4 (part 1).
* :func:`ampc_msf` — Section 5.5's practical minimum spanning forest;
  :func:`ampc_msf_theory` for the ternarize + TruncatedPrim Algorithm 2.
* :func:`kkt_msf` / :func:`find_f_light_edges` — Algorithm 3 + Algorithm 5.
* :func:`ampc_connected_components` / :func:`ampc_forest_connectivity`.
* :func:`ampc_one_vs_two_cycle` — Section 5.6.
* Corollary 4.1 consequences in :mod:`repro.core.matching_derived`.

Attributes resolve lazily (PEP 562) so that submodules can be imported
individually without pulling in the whole package.
"""

_EXPORTS = {
    "hash_rank": "repro.core.ranks",
    "edge_rank_fn": "repro.core.ranks",
    "vertex_ranks": "repro.core.ranks",
    "MISResult": "repro.core.mis",
    "ampc_mis": "repro.core.mis",
    "mpc_simulated_mis_shuffles": "repro.core.mis",
    "MatchingResult": "repro.core.matching",
    "ampc_maximal_matching": "repro.core.matching",
    "ampc_matching_phases": "repro.core.matching",
    "VertexCoverResult": "repro.core.matching_derived",
    "WeightedMatchingResult": "repro.core.matching_derived",
    "approximate_maximum_matching": "repro.core.matching_derived",
    "approximate_max_weight_matching": "repro.core.matching_derived",
    "approximate_vertex_cover": "repro.core.matching_derived",
    "MSFResult": "repro.core.msf",
    "ampc_msf": "repro.core.msf",
    "ampc_msf_theory": "repro.core.msf",
    "find_f_light_edges": "repro.core.kkt",
    "kkt_msf": "repro.core.kkt",
    "ConnectivityResult": "repro.core.connectivity",
    "ampc_connected_components": "repro.core.connectivity",
    "ampc_forest_connectivity": "repro.core.connectivity",
    "TwoCycleResult": "repro.core.two_cycle",
    "ampc_one_vs_two_cycle": "repro.core.two_cycle",
    "RandomWalkResult": "repro.core.random_walks",
    "PageRankResult": "repro.core.random_walks",
    "ampc_random_walks": "repro.core.random_walks",
    "ampc_pagerank": "repro.core.random_walks",
    "pagerank_power_iteration": "repro.core.random_walks",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name):
    if name in _EXPORTS:
        import importlib

        module = importlib.import_module(_EXPORTS[name])
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return __all__
