"""Tests for graph property computations (Table 2 machinery)."""

from repro.graph import (
    Graph,
    connected_component_sizes,
    connected_components,
    cycle_graph,
    diameter,
    diameter_lower_bound,
    disjoint_union,
    grid_graph,
    is_connected,
    path_graph,
    star_graph,
    summarize,
    two_cycles,
)


class TestConnectedComponents:
    def test_single_component(self):
        labels = connected_components(cycle_graph(5))
        assert len(set(labels)) == 1

    def test_labels_are_min_ids(self):
        graph = disjoint_union([path_graph(3), path_graph(2)])
        labels = connected_components(graph)
        assert labels == [0, 0, 0, 3, 3]

    def test_isolated_vertices(self):
        graph = Graph(4)
        graph.add_edge(0, 1)
        sizes = connected_component_sizes(graph)
        assert sorted(sizes.values()) == [1, 1, 2]

    def test_empty_graph(self):
        assert connected_components(Graph(0)) == []
        assert is_connected(Graph(0))


class TestDiameter:
    def test_path_diameter(self):
        assert diameter(path_graph(10)) == 9

    def test_cycle_diameter(self):
        assert diameter(cycle_graph(10)) == 5
        assert diameter(cycle_graph(11)) == 5

    def test_star_diameter(self):
        assert diameter(star_graph(20)) == 2

    def test_grid_diameter(self):
        assert diameter(grid_graph(3, 5)) == 2 + 4

    def test_diameter_uses_largest_component(self):
        graph = disjoint_union([path_graph(10), path_graph(3)])
        assert diameter(graph) == 9

    def test_lower_bound_is_a_lower_bound(self):
        for graph in (path_graph(30), cycle_graph(30), grid_graph(5, 6)):
            assert diameter_lower_bound(graph) <= diameter(graph)

    def test_lower_bound_exact_on_paths(self):
        # Double sweep is exact on trees.
        assert diameter_lower_bound(path_graph(40)) == 39


class TestSummarize:
    def test_two_cycles_summary(self):
        graph = two_cycles(20)
        summary = summarize("2x20", graph)
        assert summary.num_vertices == 40
        assert summary.num_edges == 40
        assert summary.num_components == 2
        assert summary.largest_component == 20
        assert summary.diameter == 10
        assert not summary.diameter_is_lower_bound

    def test_large_graph_uses_lower_bound(self):
        graph = cycle_graph(50)
        summary = summarize("c50", graph, exact_diameter_max_n=10)
        assert summary.diameter_is_lower_bound
        assert summary.diameter <= 25

    def test_row_formatting_flags_lower_bound(self):
        graph = cycle_graph(50)
        summary = summarize("c50", graph, exact_diameter_max_n=10)
        assert summary.row()[3].endswith("*")
