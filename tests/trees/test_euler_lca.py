"""Tests for rooted forests, Euler tours and LCA."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trees import EulerTour, LCAIndex, RootedForest


def _random_forest_edges(n, num_trees, seed):
    """A random forest: each non-root vertex attaches to an earlier vertex of
    its tree."""
    rng = random.Random(seed)
    roots = sorted(rng.sample(range(n), num_trees))
    tree_of = {}
    members = {r: [r] for r in roots}
    for r in roots:
        tree_of[r] = r
    unassigned = [v for v in range(n) if v not in tree_of]
    edges = []
    for v in unassigned:
        root = roots[rng.randrange(num_trees)]
        parent = members[root][rng.randrange(len(members[root]))]
        edges.append((parent, v))
        members[root].append(v)
        tree_of[v] = root
    return edges, tree_of


class TestRootedForest:
    def test_path_rooting(self):
        forest = RootedForest(4, [(0, 1), (1, 2), (2, 3)])
        assert forest.roots == [0]
        assert forest.parent == [-1, 0, 1, 2]
        assert forest.level == [0, 1, 2, 3]

    def test_two_trees(self):
        forest = RootedForest(5, [(0, 1), (3, 4)])
        assert forest.roots == [0, 2, 3]
        assert forest.same_tree(0, 1)
        assert not forest.same_tree(1, 3)

    def test_explicit_roots(self):
        forest = RootedForest(3, [(0, 1), (1, 2)], roots=[2, 0, 1])
        assert forest.roots == [2]
        assert forest.level[0] == 2

    def test_cycle_rejected(self):
        with pytest.raises(ValueError):
            RootedForest(3, [(0, 1), (1, 2), (2, 0)])

    def test_is_ancestor_of(self):
        forest = RootedForest(4, [(0, 1), (1, 2), (1, 3)])
        assert forest.is_ancestor_of(0, 2)
        assert forest.is_ancestor_of(1, 3)
        assert not forest.is_ancestor_of(2, 3)
        assert forest.is_ancestor_of(2, 2)


class TestEulerTour:
    def test_tour_length(self):
        forest = RootedForest(4, [(0, 1), (1, 2), (1, 3)])
        tour = EulerTour(forest)
        assert len(tour.tour) == 2 * 4 - 1

    def test_first_occurrence_is_first(self):
        forest = RootedForest(5, [(0, 1), (0, 2), (2, 3), (2, 4)])
        tour = EulerTour(forest)
        for v in range(5):
            assert tour.tour[tour.first[v]] == v
            assert v not in tour.tour[: tour.first[v]]

    def test_multi_tree_tour(self):
        forest = RootedForest(5, [(0, 1), (3, 4)])
        tour = EulerTour(forest)
        # 2*2-1 + 2*1-1 + 2*2-1 = 3 + 1 + 3
        assert len(tour.tour) == 7


class TestLCA:
    def test_simple_binary_tree(self):
        #       0
        #      / \
        #     1   2
        #    / \
        #   3   4
        index = LCAIndex.from_edges(5, [(0, 1), (0, 2), (1, 3), (1, 4)])
        assert index.lca(3, 4) == 1
        assert index.lca(3, 2) == 0
        assert index.lca(1, 3) == 1
        assert index.lca(0, 4) == 0
        assert index.lca(3, 3) == 3

    def test_cross_tree_is_none(self):
        index = LCAIndex.from_edges(4, [(0, 1), (2, 3)])
        assert index.lca(0, 3) is None
        assert index.distance(0, 3) is None

    def test_distance(self):
        index = LCAIndex.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        assert index.distance(0, 4) == 4
        assert index.distance(2, 2) == 0


def _naive_lca(forest, u, v):
    ancestors = set()
    x = u
    while x != -1:
        ancestors.add(x)
        x = forest.parent[x]
    x = v
    while x != -1:
        if x in ancestors:
            return x
        x = forest.parent[x]
    return None


@given(
    st.integers(min_value=2, max_value=40),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=0, max_value=999),
)
@settings(max_examples=40, deadline=None)
def test_lca_matches_naive(n, num_trees, seed):
    num_trees = min(num_trees, n)
    edges, _ = _random_forest_edges(n, num_trees, seed)
    forest = RootedForest(n, edges)
    index = LCAIndex(forest)
    rng = random.Random(seed + 1)
    for _ in range(20):
        u, v = rng.randrange(n), rng.randrange(n)
        assert index.lca(u, v) == _naive_lca(forest, u, v)
