"""Tests for the algorithm registry."""

import pytest

from repro.api import registry
from repro.api.registry import AlgorithmSpec, ParamSpec

#: the six core algorithms of the paper (random-walks rides along)
CORE_SIX = ["mis", "matching", "msf", "components", "two-cycle", "pagerank"]


class TestRegistryContents:
    def test_all_core_algorithms_registered(self):
        names = registry.names()
        for name in CORE_SIX:
            assert name in names

    def test_specs_in_registration_order(self):
        assert [spec.name for spec in registry.specs()] == registry.names()

    def test_every_spec_is_complete(self):
        for spec in registry.specs():
            assert spec.summary
            assert spec.input_kind in ("graph", "weighted", "cycle")
            assert callable(spec.run)
            assert callable(spec.prepare)
            assert callable(spec.summarize)
            assert callable(spec.describe)

    def test_msf_takes_weighted_input(self):
        assert registry.get("msf").input_kind == "weighted"

    def test_two_cycle_takes_cycle_input(self):
        assert registry.get("two-cycle").input_kind == "cycle"

    def test_pagerank_and_walks_share_preprocessing(self):
        assert (registry.get("pagerank").prepare
                is registry.get("random-walks").prepare)


class TestLookup:
    def test_underscores_and_hyphens_both_resolve(self):
        assert registry.get("two_cycle") is registry.get("two-cycle")
        assert registry.get("RANDOM_WALKS") is registry.get("random-walks")

    def test_unknown_name_lists_known_ones(self):
        with pytest.raises(KeyError, match="mis"):
            registry.get("frobnicate")


class TestParamSpecs:
    def test_flag_derived_from_name(self):
        param = ParamSpec("search_budget", int)
        assert param.flag == "--search-budget"

    def test_explicit_cli_flag_wins(self):
        spec = registry.get("pagerank")
        walks = next(p for p in spec.params if p.name == "walks_per_vertex")
        assert walks.flag == "--walks"

    def test_display_only_params_not_passed_to_algorithm(self):
        spec = registry.get("pagerank")
        passed = spec.algorithm_params({"walks_per_vertex": 4, "top": 3})
        assert passed == {"walks_per_vertex": 4}


class TestRegistration:
    def test_invalid_input_kind_rejected(self):
        with pytest.raises(ValueError, match="input_kind"):
            AlgorithmSpec(
                name="bogus", summary="x", input_kind="hypergraph",
                run=lambda *a, **k: None, prepare=lambda *a, **k: None,
                summarize=lambda r, g: {}, describe=lambda r, g, p: "",
            )

    def test_conflicting_reregistration_rejected(self):
        spec = registry.get("mis")
        clone = AlgorithmSpec(
            name="mis", summary="imposter", input_kind="graph",
            run=lambda *a, **k: None, prepare=spec.prepare,
            summarize=spec.summarize, describe=spec.describe,
        )
        with pytest.raises(ValueError, match="already registered"):
            registry.register_algorithm(clone)

    def test_idempotent_reregistration_allowed(self):
        spec = registry.get("mis")
        assert registry.register_algorithm(spec) is spec
        assert registry.names().count("mis") == 1
