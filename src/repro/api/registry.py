"""The algorithm registry: one spec per AMPC algorithm.

Every core algorithm registers an :class:`AlgorithmSpec` describing how to
run it uniformly — its input kind, its tunable parameters (with the CLI
flags they generate), the *preprocessing* stage whose DHT-resident product
a :class:`~repro.api.session.Session` can cache across runs, and adapters
that turn the algorithm's native result object into the flat summary /
human-readable description the CLI and experiment harness print.

The registry is the single dispatch point: :mod:`repro.cli` generates its
subcommands from it, :class:`Session` resolves algorithm names through it,
and :mod:`repro.analysis.experiment` runners are thin calls into it.

Core modules self-register at import time; :func:`specs` lazily imports
them so that listing the registry never requires callers to know which
module implements which algorithm.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

#: modules that register the built-in algorithm specs on import
_BUILTIN_MODULES = (
    "repro.core.mis",
    "repro.core.matching",
    "repro.core.msf",
    "repro.core.connectivity",
    "repro.core.two_cycle",
    "repro.core.random_walks",
    "repro.core.kkt",
    "repro.baselines.rootset_mis",
    "repro.baselines.rootset_matching",
    "repro.baselines.boruvka_msf",
    "repro.baselines.local_contraction_cc",
)

#: the graph representations an algorithm can declare as its input
INPUT_KINDS = ("graph", "weighted", "cycle")

#: the execution models a spec can declare; "mpc" specs get an
#: :class:`~repro.mpc.runtime.MPCRuntime` (no DHT) from the Session
MODELS = ("ampc", "mpc")


@dataclass(frozen=True)
class ParamSpec:
    """One tunable algorithm parameter, with its CLI projection."""

    name: str
    type: Callable[[str], Any]
    default: Any = None
    help: str = ""
    #: explicit CLI flag; default is ``--<name-with-dashes>``
    cli: Optional[str] = None
    #: False for display-only parameters the algorithm itself never sees
    #: (e.g. pagerank's ``top``, which only shapes the printed report)
    algorithm_arg: bool = True

    @property
    def flag(self) -> str:
        return self.cli or "--" + self.name.replace("_", "-")


@dataclass(frozen=True)
class AlgorithmSpec:
    """Everything the Session/CLI/experiment layers need about an algorithm.

    ``prepare(graph, *, runtime, seed)`` runs the algorithm's shared
    preprocessing — the "write the (transformed) graph to the key-value
    store" stage of Section 5 — and returns a cacheable artifact.
    ``run(graph, *, runtime, seed, prepared, **params)`` executes the
    algorithm against that artifact and returns its native result object.
    """

    name: str
    summary: str
    input_kind: str
    run: Callable[..., Any]
    prepare: Callable[..., Any]
    #: native result -> flat dict (must include ``output_size``)
    summarize: Callable[[Any, Any], Dict[str, Any]]
    #: (result, graph, params) -> the human-readable headline
    describe: Callable[[Any, Any, Dict[str, Any]], str]
    params: Tuple[ParamSpec, ...] = ()
    #: optional incremental hook: ``update(prepared, graph, *, runtime,
    #: seed, insertions, deletions)`` patches a prepared artifact built
    #: for an earlier version of ``graph`` into one matching its current
    #: content, in O(batch) — the touched records are rewritten into a
    #: derived (copy-on-write) child of the artifact's sealed store, so
    #: the old artifact keeps serving its own cache entry.  ``graph`` is
    #: the already-mutated graph; ``insertions``/``deletions`` are the
    #: journaled batch (possibly overlapping — treat as touched sets).
    #: Specs without a hook fall back to a full re-prepare on mutation.
    update: Optional[Callable[..., Any]] = None
    #: whether the prepared artifact depends on the seed (rank-directed
    #: graphs do; weight-sorted or plain adjacency does not)
    prep_seed_sensitive: bool = True
    #: execution model: "ampc" (default) or "mpc" (the shuffle-only
    #: baselines, which run on an MPCRuntime without a DHT)
    model: str = "ampc"

    def __post_init__(self):
        if self.input_kind not in INPUT_KINDS:
            raise ValueError(
                f"input_kind must be one of {INPUT_KINDS}, "
                f"got {self.input_kind!r}"
            )
        if self.model not in MODELS:
            raise ValueError(
                f"model must be one of {MODELS}, got {self.model!r}"
            )

    def algorithm_params(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """The subset of ``params`` the algorithm callable accepts."""
        passed = {p.name for p in self.params if p.algorithm_arg}
        return {name: value for name, value in params.items()
                if name in passed}


_REGISTRY: Dict[str, AlgorithmSpec] = {}
_ORDER: List[str] = []
_LOADED = False


def _canonical(name: str) -> str:
    return name.strip().lower().replace("_", "-")


def register_algorithm(spec: AlgorithmSpec) -> AlgorithmSpec:
    """Register ``spec`` under its canonical name; idempotent per name."""
    key = _canonical(spec.name)
    existing = _REGISTRY.get(key)
    if existing is not None and existing.run is not spec.run:
        raise ValueError(f"algorithm {key!r} is already registered")
    if existing is None:
        _ORDER.append(key)
    _REGISTRY[key] = spec
    return spec


def _ensure_loaded() -> None:
    global _LOADED
    if _LOADED:
        return
    for module in _BUILTIN_MODULES:
        importlib.import_module(module)
    # Only mark loaded on success: a failed import retries (and re-raises)
    # on the next call instead of leaving a silently partial registry.
    _LOADED = True


def get(name: str) -> AlgorithmSpec:
    """Resolve an algorithm name (hyphens and underscores both accepted)."""
    _ensure_loaded()
    key = _canonical(name)
    try:
        return _REGISTRY[key]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown algorithm {name!r}; registered: {known}"
        ) from None


def names() -> List[str]:
    """Registered algorithm names, in registration order."""
    _ensure_loaded()
    return list(_ORDER)


def specs() -> List[AlgorithmSpec]:
    """All registered specs, in registration order."""
    _ensure_loaded()
    return [_REGISTRY[name] for name in _ORDER]
