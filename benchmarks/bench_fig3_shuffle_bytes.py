"""Figure 3 — bytes shuffled by the MIS implementations.

The paper plots, per dataset: bytes shuffled by the AMPC MIS, bytes of
KV-store communication by the AMPC MIS, and bytes shuffled by the MPC MIS.
Headline shapes: the AMPC algorithm always shuffles (much) less than the
MPC algorithm — its single shuffle is proportional to the input — while its
KV communication is of the same order as (and usually below) the MPC
shuffle volume.
"""

from __future__ import annotations

from benchmarks.conftest import BENCH_DATASETS, run_once
from repro.analysis.experiment import run_ampc_mis, run_mpc_mis
from repro.analysis.reporting import Table, format_bytes

#: the annotations on top of the Figure 3 bars (bytes)
PAPER_BYTES = {
    "OK": (1.4e9, 3.4e9, 8.9e9),
    "TW": (1.6e10, 6.3e10, 7.1e10),
    "FS": (2.4e10, 1.4e11, 1.5e11),
    "CW": (5.3e11, 5.6e12, 3.4e12),
    "HL": (1.7e12, 3.5e12, 7.8e12),
}


def test_fig3_shuffle_bytes(benchmark, datasets):
    def compute():
        rows = {}
        for ds in BENCH_DATASETS:
            graph = datasets[ds]
            ampc = run_ampc_mis(graph)
            mpc = run_mpc_mis(graph)
            rows[ds] = (
                ampc["shuffle_bytes"],
                ampc["kv_bytes"],
                mpc["shuffle_bytes"],
            )
        return rows

    rows = run_once(benchmark, compute)

    table = Table(
        "Figure 3: MIS communication volume (bytes)",
        ["Dataset", "AMPC shuffle", "AMPC KV comm", "MPC shuffle",
         "MPC/AMPC shuffle ratio", "paper ratio"],
    )
    for ds, paper_key in zip(BENCH_DATASETS, PAPER_BYTES):
        ampc_shuffle, ampc_kv, mpc_shuffle = rows[ds]
        paper_ampc, paper_kv, paper_mpc = PAPER_BYTES[paper_key]
        table.add_row(
            ds,
            format_bytes(ampc_shuffle),
            format_bytes(ampc_kv),
            format_bytes(mpc_shuffle),
            f"{mpc_shuffle / ampc_shuffle:.2f}x",
            f"{paper_mpc / paper_ampc:.2f}x",
        )
    table.show()

    for ds in BENCH_DATASETS:
        ampc_shuffle, ampc_kv, mpc_shuffle = rows[ds]
        # The AMPC algorithm always shuffles fewer bytes (Figure 3).
        assert ampc_shuffle < mpc_shuffle
        # KV communication stays within a small factor of the MPC shuffle
        # volume (the paper's CW is the one case where it exceeds it).
        assert ampc_kv < 4 * mpc_shuffle
