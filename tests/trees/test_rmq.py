"""Tests for sparse-table RMQ."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trees import RangeMax, RangeMin


def test_single_element():
    rmq = RangeMin([5.0])
    assert rmq.query(0, 0) == 5.0


def test_min_simple():
    rmq = RangeMin([3, 1, 4, 1, 5, 9, 2, 6])
    assert rmq.query(0, 7) == 1
    assert rmq.query(4, 7) == 2
    assert rmq.query(5, 5) == 9


def test_min_ties_resolve_to_leftmost():
    rmq = RangeMin([2, 1, 1, 3])
    assert rmq.argquery(0, 3) == 1


def test_max_simple():
    rmq = RangeMax([3, 1, 4, 1, 5, 9, 2, 6])
    assert rmq.query(0, 7) == 9
    assert rmq.query(0, 2) == 4


def test_reversed_range_normalized():
    rmq = RangeMin([3, 1, 4])
    assert rmq.query(2, 0) == 1


def test_out_of_bounds_rejected():
    rmq = RangeMin([1, 2, 3])
    with pytest.raises(IndexError):
        rmq.query(0, 3)


@given(
    st.lists(st.integers(min_value=-100, max_value=100), min_size=1, max_size=60),
    st.data(),
)
@settings(max_examples=60, deadline=None)
def test_rmq_matches_builtin(values, data):
    i = data.draw(st.integers(0, len(values) - 1))
    j = data.draw(st.integers(i, len(values) - 1))
    assert RangeMin(values).query(i, j) == min(values[i:j + 1])
    assert RangeMax(values).query(i, j) == max(values[i:j + 1])
