"""Vectorized twins of the scalar hashing/rank kernels (numpy-optional).

The columnar data plane moves whole shards at a time, so placement and
priority hashing must run over arrays rather than one key per call.
This module holds the numpy ports of the splitmix64 kernels from
:mod:`repro.ampc.hashing` and :mod:`repro.core.ranks`; each one is an
*exact* bit-for-bit twin of its scalar reference (uint64 arithmetic wraps
mod 2**64 exactly like the ``& _MASK`` chain, and the uint64→float64
conversion rounds to nearest even, same as Python's ``int * float``) —
``tests/ampc/test_vector.py`` asserts equality on randomized inputs.

numpy is optional.  When it is absent — or ``REPRO_PURE_PYTHON=1`` is set,
which is how CI exercises the fallback — ``HAVE_NUMPY`` is False and every
consumer keeps using the scalar per-element code paths, which produce the
same results and the same simulated metrics (the golden snapshot holds in
both modes).
"""

from __future__ import annotations

import os

from repro.ampc.hashing import _MASK, _SEED, _splitmix64

__all__ = [
    "HAVE_NUMPY",
    "np",
    "splitmix64_u64",
    "stable_hash_u64",
    "placement_ids",
    "hash_ranks",
    "vertex_ranks_u64",
]

np = None
if not os.environ.get("REPRO_PURE_PYTHON"):
    try:
        import numpy as _numpy
    except ImportError:  # pragma: no cover - image always has numpy
        _numpy = None
    np = _numpy

HAVE_NUMPY = np is not None

#: scales a uint64 hash into [0, 1); a power of two, so the scaling is exact
_INV_2_64 = 1.0 / float(1 << 64)


if HAVE_NUMPY:
    _U64 = np.uint64
    _C_GAMMA = _U64(0x9E3779B97F4A7C15)
    _C_MIX1 = _U64(0xBF58476D1CE4E5B9)
    _C_MIX2 = _U64(0x94D049BB133111EB)
    _S30 = _U64(30)
    _S27 = _U64(27)
    _S31 = _U64(31)
    _SEED_U64 = _U64(_SEED)

    def splitmix64_u64(x):
        """splitmix64 finalizer over a uint64 array (wrapping arithmetic)."""
        x = x + _C_GAMMA
        x = (x ^ (x >> _S30)) * _C_MIX1
        x = (x ^ (x >> _S27)) * _C_MIX2
        return x ^ (x >> _S31)

    def stable_hash_u64(keys):
        """``stable_hash`` of non-negative int keys, as a uint64 array.

        Matches the inlined small-int fast path (and therefore
        ``_fold(_SEED, key)``) exactly for ``0 <= key <= 2**64 - 1``.
        """
        keys = np.asarray(keys).astype(np.uint64, copy=False)
        return splitmix64_u64(_SEED_U64 ^ keys)

    def placement_ids(keys, modulus):
        """``stable_hash(key) % modulus`` for an array of vertex-id keys.

        The shard/machine placement rule of ``DHTStore.shard_of`` and
        ``Cluster.machine_for``, over a whole column of keys at once.
        """
        return (stable_hash_u64(keys) % _U64(modulus)).astype(np.int64)

    def hash_ranks(seed, *item_arrays):
        """``hash_rank(seed, *items)`` over parallel item arrays.

        ``hash_ranks(seed, a, b)[i] == hash_rank(seed, a[i], b[i])``
        bit-for-bit; items must be non-negative ints.
        """
        state = _U64(_splitmix64(seed & _MASK))
        acc = None
        for items in item_arrays:
            items = np.asarray(items).astype(np.uint64, copy=False)
            acc = splitmix64_u64((state if acc is None else acc) ^ items)
        return acc * _INV_2_64

    def vertex_ranks_u64(num_vertices, seed):
        """``vertex_ranks(num_vertices, seed)`` as a float64 array."""
        return hash_ranks(seed, np.arange(num_vertices, dtype=np.uint64))

else:  # pure-python mode: consumers stay on the scalar paths
    def _unavailable(*_args, **_kwargs):
        raise RuntimeError(
            "vectorized kernels need numpy; check vector.HAVE_NUMPY first")

    splitmix64_u64 = _unavailable
    stable_hash_u64 = _unavailable
    placement_ids = _unavailable
    hash_ranks = _unavailable
    vertex_ranks_u64 = _unavailable
