"""Shared benchmark fixtures.

Every benchmark regenerates one table or figure of the paper, printing a
side-by-side text table (paper numbers vs. measured) in addition to the
pytest-benchmark wall-clock statistics.  Run with::

    pytest benchmarks/ --benchmark-only -s

Benchmarks execute once per measurement (``pedantic`` with one round):
each run is a full deterministic simulation, so repetition adds no
information, only wall-clock time.
"""

from __future__ import annotations

import pytest

from repro.analysis.datasets import (
    DATASET_NAMES,
    load_dataset,
    load_weighted_dataset,
)

#: datasets every multi-dataset benchmark sweeps, in paper (size) order
BENCH_DATASETS = list(DATASET_NAMES)

#: the smaller prefix used by the heaviest benchmarks
SMALL_BENCH_DATASETS = BENCH_DATASETS[:3]


@pytest.fixture(scope="session")
def datasets():
    """All scaled datasets, built once per session."""
    return {name: load_dataset(name) for name in BENCH_DATASETS}


@pytest.fixture(scope="session")
def weighted_datasets():
    """Degree-weighted variants (the paper's MSF inputs)."""
    return {name: load_weighted_dataset(name) for name in BENCH_DATASETS}


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its value."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
