"""Registry-wide conformance suite.

Every registered :class:`~repro.api.registry.AlgorithmSpec` — current and
future — must honour the Session contract: prepare/run separation with a
real cross-run saving, seed determinism, well-typed summarize/describe
adapters, and parameter declarations that round-trip through
``Session._merge_params``.  The suite parametrizes over ``registry.specs()``
so a newly registered algorithm is covered the moment it registers.
"""

import json

import pytest

from repro.ampc.cluster import ClusterConfig
from repro.ampc.dht import DHTStore
from repro.ampc.runtime import AMPCRuntime
from repro.api import Session, registry
from repro.dataflow.dofn import MachineContext
from repro.graph.generators import degree_weighted, erdos_renyi_gnm, two_cycles
from repro.mpc.runtime import MPCRuntime

CONFIG = ClusterConfig(num_machines=4)
SEED = 5

#: conformance inputs per declared input kind.  The weighted graph is
#: sparse (m < n^1.25), so the msf-theory spec exercises its staged
#: ternarized branch.
GRAPH = erdos_renyi_gnm(36, 60, seed=1)
WEIGHTED = degree_weighted(GRAPH)
CYCLES = two_cycles(24, shuffle_ids=True, seed=1)

#: flags the CLI reserves for cluster/run plumbing; spec params must not
#: shadow them
RESERVED_FLAGS = {
    "--machines", "--threads", "--seed", "--transport", "--no-caching",
    "--no-multithreading", "--query-budget", "--json", "--weighted",
    "--workers", "--host", "--port", "--max-cache-bytes", "--processes",
    "--backend", "--dht-node", "--replication",
}

#: the Session contract must hold wherever the records physically live;
#: "shm" runs every conformance check against a real backing store
BACKENDS = ("sim", "shm")


def _input_for(spec):
    return {"graph": GRAPH, "weighted": WEIGHTED, "cycle": CYCLES}[
        spec.input_kind
    ]


@pytest.mark.parametrize("spec", registry.specs(), ids=lambda s: s.name)
class TestSpecConformance:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_prepare_run_separation(self, spec, backend):
        """A second run reuses the preparation and shuffles strictly less."""
        with Session(CONFIG, backend=backend) as session:
            graph = _input_for(spec)
            cold = session.run(spec.name, graph, seed=SEED)
            warm = session.run(spec.name, graph, seed=SEED)
        assert not cold.preprocessing_reused
        assert warm.preprocessing_reused
        assert warm.metrics["shuffles"] < cold.metrics["shuffles"]
        assert warm.shuffles_saved > 0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_warm_run_output_matches_cold(self, spec, backend):
        with Session(CONFIG, backend=backend) as session:
            graph = _input_for(spec)
            cold = session.run(spec.name, graph, seed=SEED)
            warm = session.run(spec.name, graph, seed=SEED)
        assert warm.summary == cold.summary
        assert warm.description == cold.description

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_seed_determinism_across_sessions(self, spec, backend):
        graph = _input_for(spec)
        with Session(CONFIG, backend=backend) as session:
            first = session.run(spec.name, graph, seed=SEED)
        with Session(CONFIG, backend=backend) as session:
            second = session.run(spec.name, graph, seed=SEED)
        assert first.summary == second.summary
        assert first.description == second.description
        assert first.metrics == second.metrics

    def test_summarize_and_describe_contracts(self, spec):
        run = Session(CONFIG).run(spec.name, _input_for(spec), seed=SEED)
        assert isinstance(run.summary, dict)
        assert "output_size" in run.summary
        assert isinstance(run.description, str) and run.description
        # The whole envelope must stay JSON-serializable (the CLI --json
        # path and the serve protocol both depend on it).
        decoded = json.loads(run.to_json())
        assert decoded["algorithm"] == spec.name

    def test_params_round_trip_through_merge(self, spec):
        merged = Session._merge_params(spec, {})
        assert set(merged) == {p.name for p in spec.params}
        for param in spec.params:
            assert merged[param.name] == param.default
        # every declared param is accepted by name
        echoed = Session._merge_params(
            spec, {p.name: p.default for p in spec.params}
        )
        assert echoed == merged
        with pytest.raises(TypeError, match="unexpected parameter"):
            Session._merge_params(spec, {"definitely_not_a_param": 1})

    def test_declared_flags_do_not_shadow_reserved_ones(self, spec):
        for param in spec.params:
            assert param.flag not in RESERVED_FLAGS, (
                f"{spec.name}.{param.name} projects onto the reserved "
                f"CLI flag {param.flag}"
            )

    def test_prepare_routes_kv_writes_through_batched_api(self, spec,
                                                          monkeypatch):
        """Every spec's prepare stage that writes to a DHT must do so via
        a batched KV API — write_many or a whole-batch columnar write —
        not per-element writes."""
        batched = [0]
        original = MachineContext.write_many

        def counting_write_many(self, store, items):
            items = list(items)
            batched[0] += len(items)
            return original(self, store, items)

        monkeypatch.setattr(MachineContext, "write_many",
                            counting_write_many)
        original_columnar = DHTStore.write_columnar

        def counting_write_columnar(self, records):
            batched[0] += len(records.keys)
            return original_columnar(self, records)

        monkeypatch.setattr(DHTStore, "write_columnar",
                            counting_write_columnar)
        runtime = (MPCRuntime(config=CONFIG) if spec.model == "mpc"
                   else AMPCRuntime(config=CONFIG))
        spec.prepare(_input_for(spec), runtime=runtime, seed=SEED)
        assert batched[0] == runtime.metrics.kv_writes, (
            f"{spec.name}: {runtime.metrics.kv_writes} KV writes during "
            f"prepare, but only {batched[0]} went through the batched "
            f"write_many API"
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_prep_seed_sensitivity_declaration_holds(self, spec, backend):
        """Seed-insensitive preparations must actually serve other seeds."""
        session = Session(CONFIG, backend=backend)
        graph = _input_for(spec)
        session.run(spec.name, graph, seed=SEED)
        other = session.run(spec.name, graph, seed=SEED + 1)
        if spec.prep_seed_sensitive:
            assert not other.preprocessing_reused
        else:
            assert other.preprocessing_reused


@pytest.mark.parametrize("name", ["mis", "matching", "msf"])
def test_core_algorithms_exercise_batched_kv_ops(name, monkeypatch):
    """The flagship algorithms must run on the batched KV API end to end
    (lookup_many and/or a whole-batch write), not just compile against
    it.  The prepare stage's KV write counts whether it flows through
    ``write_many`` (pure-python mode) or the columnar batch write."""
    calls = {"lookup_many": 0, "write_many": 0}
    original_lookup_many = MachineContext.lookup_many
    original_write_many = MachineContext.write_many
    original_write_columnar = DHTStore.write_columnar

    def spy_lookup_many(self, store, keys):
        calls["lookup_many"] += 1
        return original_lookup_many(self, store, keys)

    def spy_write_many(self, store, items):
        calls["write_many"] += 1
        return original_write_many(self, store, items)

    def spy_write_columnar(self, records):
        calls["write_many"] += 1
        return original_write_columnar(self, records)

    monkeypatch.setattr(MachineContext, "lookup_many", spy_lookup_many)
    monkeypatch.setattr(MachineContext, "write_many", spy_write_many)
    monkeypatch.setattr(DHTStore, "write_columnar", spy_write_columnar)
    spec = registry.get(name)
    Session(CONFIG).run(name, _input_for(spec), seed=SEED)
    assert calls["write_many"] > 0, f"{name} never used write_many"
    if name == "matching":
        # The edge process fetches both endpoints' incident lists in one
        # batched read.
        assert calls["lookup_many"] > 0
