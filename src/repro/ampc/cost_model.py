"""Cost model: the constants behind simulated running times.

The paper's empirical section measures wall-clock time on a specific
production testbed.  We cannot re-run that testbed, so every benchmark in
this repository reports *simulated time* computed from first principles:

* a **shuffle** writes its bytes to durable storage (the fault-tolerance
  contract of Flume-C++), so it pays a per-stage setup cost plus
  ``bytes / (machines * disk_bandwidth)``;
* a **KV lookup** pays the transport latency, hidden by up to
  ``threads_per_machine`` concurrent outstanding requests when the
  multithreading optimization is on (Section 5.3), and is additionally
  bounded by NIC/aggregate network bandwidth (the paper observed an
  80 Gb/s aggregate ceiling, Section 5.7);
* **compute** is charged per elementary operation.

Absolute constants are freely configurable; the defaults are chosen to be
self-consistent and are **scaled to the repository's dataset sizes**: the
scaled datasets are ~1000x smaller than the paper's, so per-query latencies
are scaled up by the same factor to keep the *phase-time ratios* (shuffle
vs. KV search vs. compute) in the regime the paper reports.  What matters
for every reproduced figure is the ratio structure: RDMA lookups above
DRAM, TCP/IP a few-fold above RDMA (their measured end-to-end gap in
Table 4), and shuffles carrying a large fixed durable-write cost.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

#: serialized size of one vertex id (the paper uses 64-bit NodeIds)
BYTES_PER_ID = 8
#: serialized size of one edge weight
BYTES_PER_WEIGHT = 8


@dataclass(frozen=True)
class CostModel:
    """Latency/bandwidth constants of the simulated environment."""

    #: human-readable transport name ("rdma" or "tcp")
    transport: str = "rdma"
    #: one synchronous KV read, no latency hiding (scaled; see module doc)
    kv_read_latency_s: float = 8.0e-3
    #: one KV write (writes are batched more aggressively than reads)
    kv_write_latency_s: float = 8.0e-3
    #: local DRAM/cache hit (used when the caching optimization answers)
    dram_latency_s: float = 1.0e-5
    #: per-machine NIC bandwidth (20 Gbps in the paper's testbed, scaled)
    nic_bandwidth_bytes_per_s: float = 2.5e6
    #: aggregate KV-store network ceiling (80 Gb/s observed, Section 5.7,
    #: scaled by the same factor)
    aggregate_kv_bandwidth_bytes_per_s: float = 2.0e7
    #: fixed cost of spawning a shuffle stage (scheduling + durable commit)
    shuffle_setup_s: float = 0.2
    #: per-machine durable-storage write bandwidth for shuffle outputs.
    #: Scaled so that shuffle time is *bytes-dominated*, as in the paper
    #: (its MPC phases get cheaper as the graph shrinks).
    disk_bandwidth_bytes_per_s: float = 1.0e5
    #: elementary compute operations per second per machine
    compute_ops_per_s: float = 2.0e8

    @classmethod
    def rdma(cls) -> "CostModel":
        """The default RDMA-backed key-value store."""
        return cls()

    @classmethod
    def tcp(cls) -> "CostModel":
        """The TCP/IP RPC variant of Table 4.

        The raw latency gap between RDMA and kernel TCP is an order of
        magnitude, but the end-to-end gap the paper measures (Table 4) is
        a few-fold because batching and pipelining recover part of it; the
        default encodes that effective 4x.
        """
        return cls(
            transport="tcp",
            kv_read_latency_s=3.2e-2,
            kv_write_latency_s=3.2e-2,
        )

    def with_overrides(self, **kwargs) -> "CostModel":
        return replace(self, **kwargs)


def estimate_bytes_reference(obj) -> int:
    """The original recursive size walk: the dispatch table's executable
    specification, and the fallback for subclass instances whose exact
    type is not in the table.

    ``tests/ampc/test_hashing_fastpath.py`` asserts :func:`estimate_bytes`
    and this function agree exactly on every supported value shape.
    """
    if obj is None:
        return 0
    if isinstance(obj, bool):
        return 1
    if isinstance(obj, (int, float)):
        return 8
    if isinstance(obj, str):
        return len(obj.encode("utf-8"))
    if isinstance(obj, bytes):
        return len(obj)
    if isinstance(obj, dict):
        return sum(estimate_bytes_reference(k) + estimate_bytes_reference(v)
                   for k, v in obj.items())
    if isinstance(obj, (tuple, list, set, frozenset)):
        return sum(estimate_bytes_reference(item) for item in obj)
    raise TypeError(f"cannot estimate serialized size of {type(obj).__name__}")


def _sequence_bytes(obj) -> int:
    # Flat fast path for the dominant shapes — tuples of ints (adjacency
    # lists), (rank, neighbor) pairs, and tagged records like
    # ("edge", (...)).  One nesting level is unrolled inline, so the
    # ubiquitous (key, (tag, payload)) shuffle elements cost a single
    # call; deeper nesting recurses.
    total = 0
    for item in obj:
        kind = type(item)
        if kind is int or kind is float:
            total += 8
        elif kind is tuple:
            for sub in item:
                sub_kind = type(sub)
                if sub_kind is int or sub_kind is float:
                    total += 8
                elif sub_kind is tuple:
                    total += _sequence_bytes(sub)
                elif sub_kind is str:
                    total += len(sub.encode("utf-8"))
                else:
                    total += estimate_bytes(sub)
        elif kind is str:
            total += len(item.encode("utf-8"))
        else:
            total += estimate_bytes(item)
    return total


def _dict_bytes(obj) -> int:
    return sum(estimate_bytes(k) + estimate_bytes(v) for k, v in obj.items())


#: exact-type dispatch; subclasses fall back to the reference walk so the
#: result is identical for every input the old implementation accepted
_SIZE_DISPATCH = {
    type(None): lambda obj: 0,
    bool: lambda obj: 1,
    int: lambda obj: 8,
    float: lambda obj: 8,
    str: lambda obj: len(obj.encode("utf-8")),
    bytes: len,
    tuple: _sequence_bytes,
    list: _sequence_bytes,
    set: _sequence_bytes,
    frozenset: _sequence_bytes,
    dict: _dict_bytes,
}


def estimate_bytes(obj) -> int:
    """Serialized size estimate for dataflow elements and KV values.

    Ints and floats are machine words, strings are their UTF-8 length, and
    containers are the sum of their parts (per-element framing is ignored —
    consistent with the paper, which reports payload bytes).  Dispatches
    on exact type; value-identical to :func:`estimate_bytes_reference`.
    """
    handler = _SIZE_DISPATCH.get(type(obj))
    if handler is not None:
        return handler(obj)
    return estimate_bytes_reference(obj)
