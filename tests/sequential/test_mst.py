"""Tests for sequential MSF algorithms."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import WeightedGraph, cycle_graph, disjoint_union, path_graph
from repro.graph.generators import erdos_renyi_gnm, random_weighted
from repro.sequential import is_spanning_forest, kruskal_msf, msf_weight, prim_msf


def test_path_msf_is_whole_path():
    graph = random_weighted(path_graph(6), seed=0)
    forest = kruskal_msf(graph)
    assert len(forest) == 5


def test_cycle_msf_drops_heaviest_edge():
    graph = WeightedGraph(4)
    graph.add_edge(0, 1, 1.0)
    graph.add_edge(1, 2, 2.0)
    graph.add_edge(2, 3, 3.0)
    graph.add_edge(3, 0, 9.0)
    forest = kruskal_msf(graph)
    assert sorted(forest) == [(0, 1), (1, 2), (2, 3)]


def test_forest_spans_all_components():
    base = disjoint_union([cycle_graph(4), cycle_graph(5)])
    graph = random_weighted(base, seed=1)
    forest = kruskal_msf(graph)
    assert len(forest) == (4 - 1) + (5 - 1)
    assert is_spanning_forest(graph.unweighted(), forest)


def test_prim_equals_kruskal_with_ties():
    # All weights equal: the strict total order must still give a unique MSF.
    graph = WeightedGraph.from_graph(erdos_renyi_gnm(20, 50, seed=2))
    assert sorted(prim_msf(graph)) == sorted(kruskal_msf(graph))


def test_empty_graph():
    assert kruskal_msf(WeightedGraph(3)) == []
    assert prim_msf(WeightedGraph(3)) == []


def test_msf_weight_helper():
    graph = WeightedGraph.from_edges(3, [(0, 1, 1.5), (1, 2, 2.0)])
    assert msf_weight(graph, [(0, 1), (1, 2)]) == 3.5


@given(
    st.integers(min_value=2, max_value=25),
    st.integers(min_value=0, max_value=999),
)
@settings(max_examples=40, deadline=None)
def test_prim_equals_kruskal_random(n, seed):
    m = min(3 * n, n * (n - 1) // 2)
    graph = random_weighted(erdos_renyi_gnm(n, m, seed=seed), seed=seed)
    kruskal = kruskal_msf(graph)
    prim = prim_msf(graph)
    assert sorted(kruskal) == sorted(prim)
    assert is_spanning_forest(graph.unweighted(), kruskal)
