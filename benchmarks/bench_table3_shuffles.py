"""Table 3 — number of shuffles (costly rounds) per implementation.

Paper values:

    Algorithm                    OK  TW  FS  CW  HL
    AMPC MIS                      1   1   1   1   1
    AMPC Maximal Matching         1   1   1   1   1
    AMPC MSF                      5   5   5   5   5
    MPC MIS                       8  10  10  12  14
    MPC Maximal Matching          8  12  12  14  16
    MPC MSF                      33  54  57  84   -

Also reproduces the Section 5.3 note that *simulating* the AMPC MIS in
plain MPC (one shuffle per adaptive lookup) needs vastly more shuffles than
the rootset baseline, which is why the rootset algorithm is the baseline.
"""

from __future__ import annotations

from benchmarks.conftest import BENCH_DATASETS, run_once
from repro.analysis.experiment import (
    run_ampc_matching,
    run_ampc_mis,
    run_ampc_msf,
    run_mpc_boruvka,
    run_mpc_matching,
    run_mpc_mis,
)
from repro.analysis.reporting import Table
from repro.core import mpc_simulated_mis_shuffles

PAPER_ROWS = {
    "AMPC MIS": [1, 1, 1, 1, 1],
    "AMPC MM": [1, 1, 1, 1, 1],
    "AMPC MSF": [5, 5, 5, 5, 5],
    "MPC MIS": [8, 10, 10, 12, 14],
    "MPC MM": [8, 12, 12, 14, 16],
    "MPC MSF": [33, 54, 57, 84, None],
}


def test_table3_shuffle_counts(benchmark, datasets, weighted_datasets):
    def compute():
        measured = {name: [] for name in PAPER_ROWS}
        for ds in BENCH_DATASETS:
            graph = datasets[ds]
            weighted = weighted_datasets[ds]
            measured["AMPC MIS"].append(run_ampc_mis(graph)["shuffles"])
            measured["AMPC MM"].append(run_ampc_matching(graph)["shuffles"])
            measured["AMPC MSF"].append(run_ampc_msf(weighted)["shuffles"])
            measured["MPC MIS"].append(run_mpc_mis(graph)["shuffles"])
            measured["MPC MM"].append(run_mpc_matching(graph)["shuffles"])
            measured["MPC MSF"].append(run_mpc_boruvka(weighted)["shuffles"])
        return measured

    measured = run_once(benchmark, compute)

    table = Table(
        "Table 3: shuffles per algorithm (measured, paper in parentheses)",
        ["Algorithm"] + BENCH_DATASETS,
    )
    for algorithm, paper_row in PAPER_ROWS.items():
        cells = [algorithm]
        for value, paper in zip(measured[algorithm], paper_row):
            reference = "-" if paper is None else str(paper)
            cells.append(f"{value} ({reference})")
        table.add_row(*cells)
    table.show()

    # The structural claims of Table 3.
    assert all(v == 1 for v in measured["AMPC MIS"])
    assert all(v == 1 for v in measured["AMPC MM"])
    assert all(v == 5 for v in measured["AMPC MSF"])
    for ds_index in range(len(BENCH_DATASETS)):
        assert measured["MPC MIS"][ds_index] > measured["AMPC MIS"][ds_index]
        assert measured["MPC MM"][ds_index] > measured["AMPC MM"][ds_index]
        assert measured["MPC MSF"][ds_index] > 3 * measured["AMPC MSF"][ds_index]


def test_table3_simulating_ampc_in_mpc_is_hopeless(benchmark, datasets):
    """Section 5.3: the per-lookup MPC simulation needs >> rootset shuffles
    (the paper measured >1000 shuffles and a >50x slowdown on Orkut)."""

    def compute():
        graph = datasets["OK-S"]
        simulated = mpc_simulated_mis_shuffles(graph, seed=0)
        rootset = run_mpc_mis(graph)["shuffles"]
        return simulated, rootset

    simulated, rootset = run_once(benchmark, compute)
    table = Table(
        "Section 5.3: shuffles to run the AMPC MIS *in* MPC (OK-S)",
        ["Implementation", "Shuffles"],
    )
    table.add_row("MPC simulation of AMPC MIS (1 shuffle/lookup)", simulated)
    table.add_row("Rootset MPC baseline", rootset)
    table.show()
    assert simulated > 5 * rootset
