"""The Karger-Klein-Tarjan reduction (Algorithm 3) and F-light edge
classification (Algorithm 5 / Appendix B).

Algorithm 3 reduces MSF query complexity from O(m log n) to
O(m + n log^2 n): sample each edge with probability 1/log n, compute the
MSF ``F`` of the sample, discard every *F-heavy* edge (no MSF edge is
F-heavy, Proposition 3.8), and solve the survivors (F-light edges, O(n/p)
of them in expectation by the KKT sampling lemma).

Algorithm 5 classifies edges with exactly the tree machinery of Appendix B:
forest components, rooting, levels, an Euler tour + RMQ for LCA, and a
heavy-light decomposition with per-heavy-path RMQs so that the maximum
weight on any tree path is answered in O(log n) probes.

All comparisons use the strict (weight, endpoints) total order, so the
classification is exact even with tied weights, and ``kkt_msf`` is
edge-identical to Kruskal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.ampc.cluster import ClusterConfig
from repro.ampc.metrics import Metrics
from repro.ampc.runtime import AMPCRuntime
from repro.api.incremental import patch_records, touched_edges
from repro.api.registry import AlgorithmSpec, ParamSpec, register_algorithm
from repro.core.ranks import hash_rank
from repro.graph.graph import WeightedGraph, edge_key
from repro.sequential.mst import kruskal_msf
from repro.trees.euler_tour import RootedForest
from repro.trees.heavy_light import HeavyLightDecomposition
from repro.trees.lca import LCAIndex

EdgeId = Tuple[int, int]

#: sentinels comparable with (weight, u, v) order keys
_NEG = (float("-inf"), -1, -1)
_POS = (float("inf"), -1, -1)


@dataclass
class FLightReport:
    """Classification output plus the query accounting of Lemma B.2."""

    light_edges: List[EdgeId]
    heavy_edges: List[EdgeId]
    #: simulated per-edge query count (a constant number of RMQ/LCA probes
    #: plus O(log n) pivot segments — the O(n log n) bound of Lemma B.2)
    total_queries: int


def find_f_light_edges(graph: WeightedGraph,
                       forest_edges: Sequence[EdgeId]) -> FLightReport:
    """Algorithm 5: split the edges of ``graph`` into F-light and F-heavy.

    ``forest_edges`` must form a forest that is a subgraph of ``graph``.
    An edge is F-light iff its endpoints lie in different forest components
    or its order key is at most the maximum order key on its forest path.
    """
    n = graph.num_vertices
    forest = RootedForest(n, forest_edges)

    def weight_to_parent(v: int) -> Tuple[float, int, int]:
        return graph.weight_order_key(v, forest.parent[v])

    lca_index = LCAIndex(forest)
    hld = HeavyLightDecomposition(forest, weight_to_parent,
                                  neg_infinity=_NEG, pos_infinity=_POS)

    light: List[EdgeId] = []
    heavy: List[EdgeId] = []
    queries = 0
    for u, v, _ in graph.edges():
        # LCA + two root-paths of O(log n) heavy segments each (Lemma B.1).
        queries += 2 + hld.num_light_edges_above(u) + hld.num_light_edges_above(v)
        path_max = hld.max_edge_on_path(u, v, lca_index)
        if graph.weight_order_key(u, v) <= path_max:
            light.append(edge_key(u, v))
        else:
            heavy.append(edge_key(u, v))
    return FLightReport(light_edges=light, heavy_edges=heavy,
                        total_queries=queries)


@dataclass
class KKTResult:
    """Output of the KKT-reduced MSF (Algorithm 3) with query accounting."""

    forest: List[EdgeId]
    metrics: Metrics
    #: edges sampled into H
    sampled_edges: int = 0
    #: F-light survivors that the final solve ran on
    light_edges: int = 0
    #: query accounting: sampling + classification + the two sub-MSF calls
    total_queries: int = 0


@dataclass
class PreparedKKT:
    """The cluster-resident edge list (the input staged into D0).

    Algorithm 3 is driver-coordinated, so the only artifact every query
    shares is the distributed placement of the edge list — the shuffle a
    serving system pays once per graph, not per query.  Seed-independent:
    the seed only drives the sampling.
    """

    #: placed ``(u, v)`` records, for free re-placement
    records: List[EdgeId]


def prepare_kkt(graph: WeightedGraph, *,
                runtime: Optional[AMPCRuntime] = None,
                config: Optional[ClusterConfig] = None,
                seed: int = 0) -> PreparedKKT:
    """Stage the edge list onto its home machines (one shuffle)."""
    del seed
    if runtime is None:
        runtime = AMPCRuntime(config=config)
    with runtime.metrics.phase("PlaceEdges"):
        edges = runtime.pipeline.from_items(
            [(u, v) for u, v, _ in graph.edges()]
        )
        placed = edges.repartition(lambda e: edge_key(*e),
                                   name="place-edge-list")
    runtime.next_round()
    return PreparedKKT(records=placed.collect())


def update_kkt(prepared: PreparedKKT, graph: WeightedGraph, *,
               runtime: Optional[AMPCRuntime] = None,
               config: Optional[ClusterConfig] = None,
               seed: int = 0,
               insertions=(), deletions=()) -> PreparedKKT:
    """Patch the staged edge list after an edge batch (O(batch))."""
    del seed
    if runtime is None:
        runtime = AMPCRuntime(config=config)
    touched = touched_edges(insertions, deletions)
    live = [edge for edge in touched if graph.has_edge(*edge)]
    removed = [edge for edge in touched if not graph.has_edge(*edge)]
    with runtime.metrics.phase("PatchEdges"):
        patch = runtime.pipeline.from_items(live).repartition(
            lambda e: edge_key(*e), name="place-edge-patch")
    runtime.next_round()
    return PreparedKKT(records=patch_records(
        prepared.records, patch.collect(), removed,
        key=lambda edge: edge_key(*edge)))


def kkt_msf(graph: WeightedGraph, *,
            runtime: Optional[AMPCRuntime] = None,
            config: Optional[ClusterConfig] = None,
            seed: int = 0,
            sample_probability: Optional[float] = None,
            base_msf: Optional[Callable[[WeightedGraph], List[EdgeId]]] = None,
            prepared: Optional[PreparedKKT] = None) -> KKTResult:
    """Algorithm 3: MSF via KKT sampling in O(1) extra AMPC rounds.

    ``base_msf`` computes the two sub-MSFs (of the sample, and of
    F + F-light edges); it defaults to sequential Kruskal, and the AMPC
    benchmarks plug in the Algorithm 2 pipeline.  The sampling, the
    classification (Algorithm 5) and the final solve are each O(1) rounds;
    the query accounting mirrors Lemma 3.10.  A ``prepared`` artifact
    (from :func:`prepare_kkt`) serves the edge placement from cache.
    """
    if runtime is None:
        runtime = AMPCRuntime(config=config)
    metrics = runtime.metrics
    n, m = graph.num_vertices, graph.num_edges
    if m == 0:
        return KKTResult(forest=[], metrics=metrics)
    solver = base_msf or kruskal_msf
    probability = sample_probability or 1.0 / max(2.0, math.log(max(n, 2)))

    # Line 1: sample H (one ParDo over the edges; O(m) queries).
    with metrics.phase("SampleH"):
        if prepared is not None:
            edges = runtime.pipeline.from_items(
                prepared.records, key_fn=lambda e: edge_key(*e)
            )
        else:
            edges = runtime.pipeline.from_items(
                [(u, v) for u, v, _ in graph.edges()]
            )
        sampled_pcoll = edges.filter_elements(
            lambda e: hash_rank(seed, *edge_key(*e)) < probability,
            name="sample-edges",
        )
        sampled = sampled_pcoll.collect()
        sample_graph = graph.subgraph_edges(sampled)
    runtime.next_round()

    # Line 2: F = MSF(H).
    with metrics.phase("MSF-of-H"):
        runtime.pipeline.run_on_driver(
            len(sampled) * max(1, len(sampled).bit_length())
        )
        forest_of_sample = solver(sample_graph)
    runtime.next_round()

    # Line 3: the F-light edges of G (Algorithm 5).
    with metrics.phase("FLight"):
        report = find_f_light_edges(graph, forest_of_sample)
        runtime.pipeline.run_on_driver(report.total_queries)
    runtime.next_round()

    # Line 4: MSF(F + E_L).
    with metrics.phase("FinalMSF"):
        survivor_edges = set(report.light_edges) | {
            edge_key(u, v) for u, v in forest_of_sample
        }
        final_graph = graph.subgraph_edges(survivor_edges)
        runtime.pipeline.run_on_driver(
            len(survivor_edges) * max(1, len(survivor_edges).bit_length())
        )
        forest = solver(final_graph)
    runtime.next_round()

    total_queries = m + report.total_queries + len(sampled) + len(survivor_edges)
    return KKTResult(
        forest=sorted(edge_key(u, v) for u, v in forest),
        metrics=metrics,
        sampled_edges=len(sampled),
        light_edges=len(report.light_edges),
        total_queries=total_queries,
    )


# ---------------------------------------------------------------------------
# Registry spec (the Session/CLI entry point)
# ---------------------------------------------------------------------------


def _summarize(result: KKTResult, graph: WeightedGraph) -> Dict[str, float]:
    return {
        "output_size": len(result.forest),
        "weight": sum(graph.weight(u, v) for u, v in result.forest),
        "sampled_edges": result.sampled_edges,
        "light_edges": result.light_edges,
        "total_queries": result.total_queries,
    }


def _describe(result: KKTResult, graph: WeightedGraph, params) -> str:
    return (f"minimum spanning forest (KKT, Algorithm 3): "
            f"{len(result.forest)} edges, sampled {result.sampled_edges}, "
            f"{result.light_edges} F-light survivors")


register_algorithm(AlgorithmSpec(
    name="kkt-msf",
    summary="minimum spanning forest via KKT sampling (Algorithm 3)",
    input_kind="weighted",
    run=kkt_msf,
    prepare=prepare_kkt,
    update=update_kkt,
    summarize=_summarize,
    describe=_describe,
    params=(
        ParamSpec("sample_probability", float, None,
                  "per-edge sampling probability for H (default 1/log n)"),
    ),
    prep_seed_sensitive=False,  # placement ignores the seed
))
