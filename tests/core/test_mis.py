"""Tests for the AMPC MIS algorithm and the MPC rootset baseline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ampc import ClusterConfig
from repro.baselines import mpc_rootset_mis
from repro.core import ampc_mis, mpc_simulated_mis_shuffles, vertex_ranks
from repro.graph import Graph, complete_graph, cycle_graph, path_graph, star_graph
from repro.graph.generators import barabasi_albert_graph, erdos_renyi_gnm
from repro.sequential import greedy_mis, is_maximal_independent_set

CONFIG = ClusterConfig(num_machines=4)


class TestAMPCMIS:
    def test_matches_sequential_greedy(self):
        for seed in range(5):
            graph = erdos_renyi_gnm(40, 90, seed=seed)
            result = ampc_mis(graph, seed=seed, config=CONFIG)
            expected = greedy_mis(graph, vertex_ranks(40, seed))
            assert result.independent_set == expected

    def test_always_maximal(self):
        graph = barabasi_albert_graph(120, 3, seed=1)
        result = ampc_mis(graph, seed=1, config=CONFIG)
        assert is_maximal_independent_set(graph, result.independent_set)

    def test_single_shuffle(self):
        """Table 3: the AMPC MIS uses exactly one shuffle."""
        graph = erdos_renyi_gnm(50, 100, seed=2)
        result = ampc_mis(graph, seed=2, config=CONFIG)
        assert result.metrics.shuffles == 1

    def test_two_rounds_practical(self):
        graph = erdos_renyi_gnm(50, 100, seed=3)
        result = ampc_mis(graph, seed=3, config=CONFIG)
        assert result.rounds == 2

    def test_isolated_vertices_all_in(self):
        graph = Graph(5)
        result = ampc_mis(graph, seed=0, config=CONFIG)
        assert result.independent_set == {0, 1, 2, 3, 4}

    def test_complete_graph_single_winner(self):
        graph = complete_graph(8)
        result = ampc_mis(graph, seed=4, config=CONFIG)
        assert len(result.independent_set) == 1

    def test_star_center_or_leaves(self):
        graph = star_graph(10)
        result = ampc_mis(graph, seed=5, config=CONFIG)
        assert result.independent_set == {0} or result.independent_set == set(
            range(1, 10)
        )

    def test_caching_reduces_lookups(self):
        graph = barabasi_albert_graph(200, 3, seed=6)
        cached = ampc_mis(graph, seed=6,
                          config=CONFIG.with_overrides(caching=True))
        uncached = ampc_mis(graph, seed=6,
                            config=CONFIG.with_overrides(caching=False))
        assert cached.independent_set == uncached.independent_set
        assert cached.metrics.kv_reads < uncached.metrics.kv_reads
        assert cached.metrics.cache_hits > 0

    def test_multithreading_faster(self):
        graph = barabasi_albert_graph(200, 3, seed=7)
        fast = ampc_mis(graph, seed=7,
                        config=CONFIG.with_overrides(multithreading=True))
        slow = ampc_mis(graph, seed=7,
                        config=CONFIG.with_overrides(multithreading=False))
        assert fast.independent_set == slow.independent_set
        assert fast.metrics.simulated_time_s < slow.metrics.simulated_time_s

    def test_deterministic_across_machine_counts(self):
        graph = erdos_renyi_gnm(60, 150, seed=8)
        few = ampc_mis(graph, seed=8, config=ClusterConfig(num_machines=2))
        many = ampc_mis(graph, seed=8, config=ClusterConfig(num_machines=16))
        assert few.independent_set == many.independent_set

    def test_phase_breakdown_present(self):
        graph = erdos_renyi_gnm(40, 80, seed=9)
        result = ampc_mis(graph, seed=9, config=CONFIG)
        for phase in ("DirectGraph", "KV-Write", "IsInMIS"):
            assert phase in result.metrics.phases.seconds


class TestTruncatedTheoryVariant:
    def test_matches_untruncated(self):
        for seed in range(3):
            graph = erdos_renyi_gnm(50, 120, seed=seed)
            expected = greedy_mis(graph, vertex_ranks(50, seed))
            result = ampc_mis(graph, seed=seed, config=CONFIG, search_budget=4)
            assert result.independent_set == expected

    def test_uses_more_rounds_than_practical(self):
        graph = erdos_renyi_gnm(80, 240, seed=1)
        truncated = ampc_mis(graph, seed=1, config=CONFIG, search_budget=4)
        assert truncated.rounds >= 2

    def test_larger_budget_fewer_rounds(self):
        graph = erdos_renyi_gnm(80, 240, seed=2)
        small = ampc_mis(graph, seed=2, config=CONFIG, search_budget=4)
        large = ampc_mis(graph, seed=2, config=CONFIG, search_budget=10_000)
        assert large.rounds <= small.rounds
        assert small.independent_set == large.independent_set


class TestRootsetMIS:
    def test_matches_ampc(self):
        for seed in range(4):
            graph = erdos_renyi_gnm(50, 120, seed=seed)
            ampc = ampc_mis(graph, seed=seed, config=CONFIG)
            mpc = mpc_rootset_mis(graph, seed=seed, config=CONFIG,
                                  in_memory_threshold=16)
            assert ampc.independent_set == mpc.independent_set

    def test_two_shuffles_per_phase(self):
        graph = erdos_renyi_gnm(80, 300, seed=3)
        result = mpc_rootset_mis(graph, seed=3, config=CONFIG,
                                 in_memory_threshold=8)
        # 2 per phase + the final gather shuffle (if the fallback ran).
        assert result.metrics.shuffles >= 2 * result.phases

    def test_more_shuffles_than_ampc(self):
        """The Table 3 relationship: MPC uses strictly more shuffles."""
        graph = erdos_renyi_gnm(80, 300, seed=4)
        ampc = ampc_mis(graph, seed=4, config=CONFIG)
        mpc = mpc_rootset_mis(graph, seed=4, config=CONFIG,
                              in_memory_threshold=8)
        assert mpc.metrics.shuffles > ampc.metrics.shuffles

    def test_in_memory_fallback_only(self):
        graph = path_graph(10)
        result = mpc_rootset_mis(graph, seed=0, config=CONFIG,
                                 in_memory_threshold=100)
        assert result.phases == 0
        assert is_maximal_independent_set(graph, result.independent_set)

    def test_empty_graph(self):
        result = mpc_rootset_mis(Graph(0), seed=0, config=CONFIG)
        assert result.independent_set == set()


class TestMPCSimulation:
    def test_needs_many_shuffles(self):
        """Section 5.3: simulating AMPC MIS in MPC needs far more shuffles
        than the rootset baseline."""
        graph = barabasi_albert_graph(300, 4, seed=5)
        simulated = mpc_simulated_mis_shuffles(graph, seed=5)
        rootset = mpc_rootset_mis(graph, seed=5, config=CONFIG,
                                  in_memory_threshold=64)
        assert simulated > 3 * rootset.metrics.shuffles

    def test_cap_respected(self):
        graph = cycle_graph(30)
        assert mpc_simulated_mis_shuffles(graph, seed=0, shuffle_cap=5) <= 5


@given(
    st.integers(min_value=1, max_value=30),
    st.integers(min_value=0, max_value=500),
)
@settings(max_examples=20, deadline=None)
def test_ampc_mis_property(n, seed):
    m = min(2 * n, n * (n - 1) // 2)
    graph = erdos_renyi_gnm(n, m, seed=seed)
    result = ampc_mis(graph, seed=seed, config=ClusterConfig(num_machines=3))
    assert result.independent_set == greedy_mis(graph, vertex_ranks(n, seed))
