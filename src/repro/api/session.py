"""Sessions: one simulated cluster serving many algorithm runs.

The point of the AMPC model (and of the paper's production setting) is that
the DHT-resident graph outlives a single query: every algorithm in Section
5 starts with the same "write the directed graph to the key-value store"
stage, and a serving system amortizes that stage across queries.

:class:`Session` is that amortization boundary.  It owns one
:class:`~repro.ampc.cluster.ClusterConfig` and a per-graph preprocessing
cache: the first ``session.run("mis", graph)`` pays the preprocessing
shuffle and KV writes, a second run on the same graph (and, where the
artifact is seed-independent, a run of a sibling algorithm sharing the
same preparation, e.g. ``pagerank`` and ``random-walks``) skips them and
reports the saving in its :class:`~repro.api.result.RunResult`.

Each run gets a **fresh** :class:`~repro.ampc.runtime.AMPCRuntime`, so
metrics are per-run; only sealed DHT stores and driver-side artifacts are
shared, which is exactly what the model allows (sealed stores are
read-only).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.ampc.cluster import ClusterConfig
from repro.ampc.faults import FaultPlan
from repro.ampc.runtime import AMPCRuntime
from repro.api import registry
from repro.api.result import RunResult


@dataclass
class SessionStats:
    """Cross-run accounting of one Session."""

    runs: int = 0
    preprocessing_hits: int = 0
    preprocessing_misses: int = 0
    #: shuffles skipped thanks to the preprocessing cache
    shuffles_saved: int = 0
    #: KV writes skipped thanks to the preprocessing cache
    kv_writes_saved: int = 0


@dataclass
class _CacheEntry:
    prepared: Any
    #: what the preparation cost when it ran (i.e. what a hit saves)
    prep_shuffles: int
    prep_kv_writes: int
    #: strong reference: keeps ``id(graph)`` valid for the cache key
    graph: Any = field(repr=False, default=None)


class Session:
    """One entry point for every registered AMPC algorithm.

    ::

        session = Session(ClusterConfig(num_machines=10))
        mis = session.run("mis", graph, seed=1)
        matching = session.run("matching", graph, seed=1)
        again = session.run("mis", graph, seed=1)   # preprocessing cached
        assert again.preprocessing_reused
        assert again.metrics["shuffles"] < mis.metrics["shuffles"]

    The cache key is ``(preprocessing stage, graph identity, seed)`` —
    seed only where the artifact is rank-dependent.  Graph identity is
    ``id(graph)`` plus its vertex/edge counts, so mutating a cached graph
    in place invalidates the entry whenever the mutation changes either
    count; callers mutating graphs between runs should call
    :meth:`clear_preprocessing` to be safe.
    """

    def __init__(self, config: Optional[ClusterConfig] = None, *,
                 fault_plan: Optional[FaultPlan] = None,
                 strict_rounds: bool = False):
        self.config = config or ClusterConfig()
        self.fault_plan = fault_plan
        self.strict_rounds = strict_rounds
        self.stats = SessionStats()
        self._cache: Dict[Tuple, _CacheEntry] = {}

    # -- introspection -----------------------------------------------------

    def algorithms(self):
        """Names this session can run (the registry's, in order)."""
        return registry.names()

    @property
    def cached_preprocessings(self) -> int:
        return len(self._cache)

    def clear_preprocessing(self) -> None:
        """Drop every cached preprocessing artifact."""
        self._cache.clear()

    # -- execution ---------------------------------------------------------

    def run(self, algorithm: str, graph: Any, *, seed: int = 0,
            reuse_preprocessing: bool = True, **params: Any) -> RunResult:
        """Run ``algorithm`` on ``graph`` and return its RunResult envelope.

        ``params`` must be parameters the algorithm's spec declares;
        unknown names raise ``TypeError`` (mirroring a keyword-argument
        mismatch).  ``reuse_preprocessing=False`` forces a cold run and
        leaves the cache untouched.
        """
        spec = registry.get(algorithm)
        merged = self._merge_params(spec, params)
        runtime = AMPCRuntime(config=self.config,
                              fault_plan=self.fault_plan,
                              strict_rounds=self.strict_rounds)
        entry, reused = self._prepare(spec, graph, seed, runtime,
                                      reuse_preprocessing)
        result = spec.run(graph, runtime=runtime, seed=seed,
                          prepared=entry.prepared,
                          **spec.algorithm_params(merged))
        metrics = runtime.metrics
        self.stats.runs += 1
        if reused:
            self.stats.preprocessing_hits += 1
            self.stats.shuffles_saved += entry.prep_shuffles
            self.stats.kv_writes_saved += entry.prep_kv_writes
        else:
            self.stats.preprocessing_misses += 1
        return RunResult(
            algorithm=spec.name,
            seed=seed,
            params=merged,
            output=result,
            summary=spec.summarize(result, graph),
            metrics=metrics.summary(),
            phases=dict(metrics.phases.items()),
            # The algorithm's logical round count (a cache-served
            # preparation round still counts); the rounds this runtime
            # actually executed are metrics["rounds"].
            rounds=getattr(result, "rounds", metrics.rounds),
            preprocessing_reused=reused,
            shuffles_saved=entry.prep_shuffles if reused else 0,
            description=spec.describe(result, graph, merged),
        )

    # -- internals ---------------------------------------------------------

    @staticmethod
    def _merge_params(spec, params: Dict[str, Any]) -> Dict[str, Any]:
        known = {p.name: p for p in spec.params}
        unknown = set(params) - set(known)
        if unknown:
            raise TypeError(
                f"{spec.name!r} got unexpected parameter(s): "
                f"{', '.join(sorted(unknown))}; "
                f"declared: {', '.join(known) or '(none)'}"
            )
        return {name: params.get(name, p.default)
                for name, p in known.items()}

    def _cache_key(self, spec, graph: Any, seed: int) -> Tuple:
        return (
            spec.prepare,
            id(graph),
            getattr(graph, "num_vertices", None),
            getattr(graph, "num_edges", None),
            seed if spec.prep_seed_sensitive else None,
        )

    def _prepare(self, spec, graph: Any, seed: int,
                 runtime: AMPCRuntime, reuse: bool):
        key = self._cache_key(spec, graph, seed)
        if reuse:
            entry = self._cache.get(key)
            if entry is not None:
                return entry, True
        metrics = runtime.metrics
        shuffles_before = metrics.shuffles
        kv_writes_before = metrics.kv_writes
        prepared = spec.prepare(graph, runtime=runtime, seed=seed)
        entry = _CacheEntry(
            prepared=prepared,
            prep_shuffles=metrics.shuffles - shuffles_before,
            prep_kv_writes=metrics.kv_writes - kv_writes_before,
            graph=graph,
        )
        if reuse:
            self._cache[key] = entry
        return entry, False
