"""The simulated cluster: machines, threads, partitioning and stage timing.

:class:`Cluster` is the single place where simulated time is computed.  A
stage hands it per-machine work descriptions (compute operations, KV reads
and writes with byte counts) and the cluster charges the *critical path*
(the slowest machine) to the metrics, applying:

* thread-level latency hiding when the multithreading optimization is on
  (Section 5.3: threads waiting on synchronous KV lookups are swapped out);
* the per-machine NIC and the aggregate KV-store bandwidth ceilings
  (Section 5.7 observed ~80 Gb/s aggregate);
* preemption re-execution when a :class:`FaultPlan` is attached.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, List, Optional, Sequence

from repro.ampc.cost_model import CostModel
from repro.ampc.faults import FaultPlan
from repro.ampc.hashing import _MASK, _SEED, stable_hash
from repro.ampc.metrics import Metrics


@dataclass(frozen=True)
class ClusterConfig:
    """Cluster shape and the optimization toggles of Section 5.3."""

    num_machines: int = 10
    threads_per_machine: int = 72
    #: the paper's multithreading optimization (latency hiding)
    multithreading: bool = True
    #: the paper's caching optimization (per-machine query cache)
    caching: bool = True
    cost_model: CostModel = field(default_factory=CostModel.rdma)
    #: per-machine, per-stage KV query budget; None disables enforcement.
    #: This is the O(S) communication bound of the AMPC model (Section 2).
    query_budget_per_machine: Optional[int] = None
    seed: int = 0

    def __post_init__(self):
        if self.num_machines < 1:
            raise ValueError("need at least one machine")
        if self.threads_per_machine < 1:
            raise ValueError("need at least one thread per machine")

    def with_overrides(self, **kwargs) -> "ClusterConfig":
        return replace(self, **kwargs)


@dataclass
class MachineWork:
    """Per-machine resource consumption within one stage."""

    compute_ops: int = 0
    kv_reads: int = 0
    kv_read_bytes: int = 0
    kv_writes: int = 0
    kv_write_bytes: int = 0
    cache_hits: int = 0

    @property
    def kv_queries(self) -> int:
        return self.kv_reads + self.kv_writes


class Cluster:
    """A simulated cluster; owns the metrics of the current execution."""

    def __init__(self, config: Optional[ClusterConfig] = None,
                 fault_plan: Optional[FaultPlan] = None):
        self.config = config or ClusterConfig()
        self.fault_plan = fault_plan
        self.metrics = Metrics()
        self._stage_counter = 0
        #: hoisted for the per-element placement loops (config is frozen)
        self._num_machines = self.config.num_machines

    # -- partitioning ----------------------------------------------------

    def machine_for(self, key: Any) -> int:
        """Deterministic hash placement of a key onto a machine.

        Uses the salt-free :func:`repro.ampc.hashing.stable_hash` so that
        string-keyed placements — and every placement-derived metric —
        are identical across interpreter runs.  The vertex-id case inlines
        the same single-``splitmix64`` fast path ``stable_hash`` takes,
        saving the call in this per-element hot loop.
        """
        if type(key) is int and 0 <= key <= _MASK:
            x = ((_SEED ^ key) + 0x9E3779B97F4A7C15) & _MASK
            x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
            x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK
            return (x ^ (x >> 31)) % self._num_machines
        return stable_hash(key) % self._num_machines

    def partition(self, items: Sequence[Any],
                  key_fn: Optional[Callable[[Any], Any]] = None
                  ) -> List[List[Any]]:
        """Split items into per-machine lists by hash of ``key_fn(item)``.

        With ``key_fn=None`` items are dealt round-robin (balanced), which
        models the random assignment of Algorithm 1 line 2.
        """
        partitions: List[List[Any]] = [
            [] for _ in range(self.config.num_machines)
        ]
        if key_fn is None:
            num_machines = self.config.num_machines
            for index, item in enumerate(items):
                partitions[index % num_machines].append(item)
        else:
            machine_for = self.machine_for
            for item in items:
                partitions[machine_for(key_fn(item))].append(item)
        return partitions

    # -- timing ----------------------------------------------------------

    def effective_threads(self) -> int:
        """Concurrent outstanding KV lookups per machine.

        Without the multithreading optimization a machine still runs
        multiple Flume worker processes, so latency hiding does not drop to
        1; the paper measured the optimization to be worth 1.26-2.59x,
        which a 3x concurrency gap reproduces.
        """
        if self.config.multithreading:
            return self.config.threads_per_machine
        return max(1, self.config.threads_per_machine // 3)

    def machine_stage_time(self, work: MachineWork) -> float:
        """Simulated seconds one machine spends on its stage partition."""
        model = self.config.cost_model
        compute = work.compute_ops / model.compute_ops_per_s
        # Latency-bound KV cost: synchronous lookups hidden by threads.
        threads = self.effective_threads()
        latency_cost = (
            work.kv_reads * model.kv_read_latency_s
            + work.kv_writes * model.kv_write_latency_s
        ) / threads
        # Cache hits cost DRAM latency (not hidden: they are instant-ish).
        latency_cost += work.cache_hits * model.dram_latency_s
        # Bandwidth-bound KV cost: NIC and the aggregate ceiling.
        bytes_total = work.kv_read_bytes + work.kv_write_bytes
        per_machine_bw = min(
            model.nic_bandwidth_bytes_per_s,
            model.aggregate_kv_bandwidth_bytes_per_s / self.config.num_machines,
        )
        bandwidth_cost = bytes_total / per_machine_bw
        return compute + max(latency_cost, bandwidth_cost)

    def charge_stage(self, works: Sequence[MachineWork]) -> float:
        """Charge a ParDo-style stage: the slowest machine is the stage time.

        Applies preemption re-execution per machine when a fault plan is
        attached.  Returns the stage time.
        """
        self._stage_counter += 1
        worst = 0.0
        max_queries = 0
        for machine_id, work in enumerate(works):
            time = self.machine_stage_time(work)
            if self.fault_plan is not None:
                executions = self.fault_plan.executions_for(
                    self._stage_counter, machine_id
                )
                self.metrics.preemptions += executions - 1
                time *= executions
            worst = max(worst, time)
            max_queries = max(max_queries, work.kv_queries)
        self.metrics.max_machine_queries_per_stage = max(
            self.metrics.max_machine_queries_per_stage, max_queries
        )
        self.metrics.charge_time(worst)
        return worst

    def finish_stage(self, works: Sequence[MachineWork]) -> float:
        """:meth:`charge_stage` plus the per-work KV metrics mirror.

        The one shared epilogue of every ParDo-style stage — boxed
        ``par_do`` and the columnar stage twins both end here, so the
        charged metrics cannot drift between the two paths.
        """
        time = self.charge_stage(works)
        metrics = self.metrics
        for work in works:
            metrics.kv_reads += work.kv_reads
            metrics.kv_writes += work.kv_writes
            metrics.kv_read_bytes += work.kv_read_bytes
            metrics.kv_write_bytes += work.kv_write_bytes
            metrics.cache_hits += work.cache_hits
            metrics.cache_misses += work.kv_reads
        return time

    def charge_shuffle(self, total_bytes: int) -> float:
        """Charge one shuffle: durable write of ``total_bytes``."""
        model = self.config.cost_model
        self._stage_counter += 1
        time = model.shuffle_setup_s + total_bytes / (
            self.config.num_machines * model.disk_bandwidth_bytes_per_s
        )
        if self.fault_plan is not None:
            # A preemption during a shuffle re-runs the lost machine's part;
            # model it as re-writing 1/M of the bytes per preemption.
            extra = 0
            for machine_id in range(self.config.num_machines):
                executions = self.fault_plan.executions_for(
                    self._stage_counter, machine_id
                )
                extra += executions - 1
            self.metrics.preemptions += extra
            time += extra * (
                total_bytes
                / self.config.num_machines
                / model.disk_bandwidth_bytes_per_s
            )
        self.metrics.shuffles += 1
        self.metrics.shuffle_bytes += total_bytes
        self.metrics.charge_time(time)
        return time
