"""GraphService behaviour: named graphs, futures, conversion, lifecycle."""

import pytest

from repro.ampc.cluster import ClusterConfig
from repro.api import Session
from repro.graph.generators import erdos_renyi_gnm
from repro.serve import GraphService, ServiceClosedError

CONFIG = ClusterConfig(num_machines=4)
GRAPH = erdos_renyi_gnm(40, 100, seed=1)


@pytest.fixture()
def service():
    with GraphService(CONFIG, workers=2) as svc:
        svc.load("g", GRAPH)
        yield svc


class TestQueries:
    def test_query_matches_direct_session_run(self, service):
        served = service.query("mis", "g", seed=3, timeout=60)
        direct = Session(CONFIG).run("mis", GRAPH, seed=3)
        assert served.output.independent_set == direct.output.independent_set
        assert served.summary == direct.summary
        assert served.graph_name == "g"

    def test_submit_returns_future(self, service):
        pending = service.submit("matching", "g", seed=1)
        result = pending.result(60)
        assert pending.done()
        assert result.algorithm == "matching"
        assert pending.exception() is None

    def test_weighted_algorithms_accept_unweighted_named_graphs(
            self, service):
        """msf on an unweighted graph gets the paper's degree weights,
        exactly like the CLI default."""
        served = service.query("msf", "g", seed=1, timeout=60)
        from repro.graph.generators import degree_weighted
        direct = Session(CONFIG).run("msf", degree_weighted(GRAPH), seed=1)
        assert served.output.forest == direct.output.forest

    def test_derived_weighted_graph_is_cached_by_content(self, service):
        first = service.query("msf", "g", seed=1, timeout=60)
        second = service.query("msf", "g", seed=2, timeout=60)
        assert not first.preprocessing_reused
        assert second.preprocessing_reused

    def test_unknown_graph_fails_in_worker(self, service):
        pending = service.submit("mis", "nope", seed=0)
        error = pending.exception(60)
        assert isinstance(error, KeyError)
        assert service.stats()["failed"] == 1

    def test_unknown_algorithm_rejected_at_submit(self, service):
        with pytest.raises(KeyError, match="unknown algorithm"):
            service.submit("frobnicate", "g")
        assert service.stats()["submitted"] == 0

    def test_unknown_param_rejected_at_submit(self, service):
        with pytest.raises(TypeError, match="unexpected parameter"):
            service.submit("mis", "g", walk_length=5)

    def test_algorithm_errors_are_contained(self, service):
        """A failing query resolves its future; the service keeps serving."""
        service.load("cycle-shaped", GRAPH)
        bad = service.submit("two-cycle", "cycle-shaped")
        assert isinstance(bad.exception(60), ValueError)
        good = service.query("mis", "g", timeout=60)
        assert good.output_size > 0


class TestLifecycle:
    def test_stats_counters(self, service):
        for seed in range(3):
            service.query("mis", "g", seed=seed, timeout=60)
        stats = service.stats()
        assert stats["submitted"] == 3
        assert stats["completed"] == 3
        assert stats["failed"] == 0
        assert stats["runs"] == 3
        assert stats["workers"] == 2
        assert stats["graphs_loaded"] == 1

    def test_pinned_graphs_survive_caller_drop(self):
        import gc

        with GraphService(CONFIG, workers=1) as svc:
            svc.load("tmp", erdos_renyi_gnm(20, 30, seed=9))
            gc.collect()
            result = svc.query("mis", "tmp", timeout=60)
            assert result.output_size > 0
            svc.unload("tmp")
            assert svc.graphs() == []

    def test_submit_after_close_raises(self):
        svc = GraphService(CONFIG, workers=1)
        svc.load("g", GRAPH)
        svc.close()
        with pytest.raises(ServiceClosedError):
            svc.submit("mis", "g")

    def test_close_drains_in_flight_queries(self):
        svc = GraphService(CONFIG, workers=2)
        svc.load("g", GRAPH)
        pending = [svc.submit("mis", "g", seed=s) for s in range(6)]
        svc.close(wait=True)
        assert all(p.done() for p in pending)
        assert {p.result().seed for p in pending} == set(range(6))
