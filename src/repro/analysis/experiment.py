"""One-call experiment runners.

Each runner executes one algorithm on one input under one cluster
configuration and returns a flat record: the output size, every metric the
paper reports, and the per-phase simulated-time breakdown.  Benchmarks are
thin loops over these runners.

The AMPC runners dispatch through the :class:`repro.api.Session` registry
API; passing an explicit ``session`` shares one cluster (and its
preprocessing cache) across many runs, which is how repeated-query
benchmarks measure the amortized cost.  The MPC baselines predate the
registry and keep their direct call paths.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.ampc.cluster import ClusterConfig
from repro.ampc.cost_model import CostModel
from repro.api import Session
from repro.api.result import RunResult
from repro.baselines.boruvka_msf import mpc_boruvka_msf
from repro.baselines.local_contraction_cc import mpc_local_contraction_cc
from repro.baselines.rootset_matching import mpc_rootset_matching
from repro.baselines.rootset_mis import mpc_rootset_mis
from repro.graph.graph import Graph, WeightedGraph

#: the paper's cluster shape: up to 100 machines, 72 hyper-threads each.
#: 10 machines is the default benchmark scale (inputs are ~1000x smaller).
BENCH_MACHINES = 10


def bench_config(*, transport: str = "rdma", machines: int = BENCH_MACHINES,
                 caching: bool = True, multithreading: bool = True,
                 ) -> ClusterConfig:
    """The benchmark cluster shape with one-flag ablation toggles."""
    cost_model = CostModel.tcp() if transport == "tcp" else CostModel.rdma()
    return ClusterConfig(
        num_machines=machines,
        threads_per_machine=72,
        caching=caching,
        multithreading=multithreading,
        cost_model=cost_model,
    )


def _record(metrics, **extra) -> Dict[str, Any]:
    record = metrics.summary()
    record["phase_breakdown"] = dict(metrics.phases.items())
    record.update(extra)
    return record


def _ampc_record(result: RunResult) -> Dict[str, Any]:
    """Flatten a RunResult into the benchmark record shape."""
    record = dict(result.metrics)
    record["phase_breakdown"] = dict(result.phases)
    record.update(result.summary)
    record["preprocessing_reused"] = result.preprocessing_reused
    record["shuffles_saved"] = result.shuffles_saved
    return record


def _session(config: Optional[ClusterConfig],
             session: Optional[Session]) -> Session:
    return session if session is not None else Session(config or bench_config())


def run_ampc_mis(graph: Graph, *, config: Optional[ClusterConfig] = None,
                 seed: int = 0,
                 session: Optional[Session] = None) -> Dict[str, Any]:
    """Run the AMPC MIS and return its flat metrics record."""
    result = _session(config, session).run("mis", graph, seed=seed)
    return _ampc_record(result)


def run_mpc_mis(graph: Graph, *, config: Optional[ClusterConfig] = None,
                seed: int = 0,
                in_memory_threshold: Optional[int] = None) -> Dict[str, Any]:
    """Run the MPC rootset MIS baseline and return its metrics record."""
    # The paper's threshold (5e7 edges) is ~2% of its mid-size inputs;
    # the same fraction keeps the phase counts in the Table 3 regime.
    threshold = in_memory_threshold or max(256, graph.num_edges // 50)
    result = mpc_rootset_mis(graph, config=config or bench_config(),
                             seed=seed, in_memory_threshold=threshold)
    return _record(result.metrics, output_size=len(result.independent_set),
                   phases=result.phases)


def run_ampc_matching(graph: Graph, *,
                      config: Optional[ClusterConfig] = None,
                      seed: int = 0,
                      session: Optional[Session] = None) -> Dict[str, Any]:
    """Run the AMPC maximal matching and return its metrics record."""
    result = _session(config, session).run("matching", graph, seed=seed)
    return _ampc_record(result)


def run_mpc_matching(graph: Graph, *,
                     config: Optional[ClusterConfig] = None,
                     seed: int = 0,
                     in_memory_threshold: Optional[int] = None
                     ) -> Dict[str, Any]:
    """Run the MPC rootset matching baseline; returns its metrics record."""
    threshold = in_memory_threshold or max(256, graph.num_edges // 50)
    result = mpc_rootset_matching(graph, config=config or bench_config(),
                                  seed=seed, in_memory_threshold=threshold)
    return _record(result.metrics, output_size=len(result.matching),
                   phases=result.phases)


def run_ampc_msf(graph: WeightedGraph, *,
                 config: Optional[ClusterConfig] = None,
                 seed: int = 0,
                 session: Optional[Session] = None) -> Dict[str, Any]:
    """Run the practical AMPC MSF and return its metrics record."""
    result = _session(config, session).run("msf", graph, seed=seed)
    return _ampc_record(result)


def run_mpc_boruvka(graph: WeightedGraph, *,
                    config: Optional[ClusterConfig] = None,
                    seed: int = 0,
                    in_memory_threshold: Optional[int] = None
                    ) -> Dict[str, Any]:
    """Run the MPC Boruvka MSF baseline and return its metrics record."""
    threshold = in_memory_threshold or max(512, graph.num_edges // 5)
    result = mpc_boruvka_msf(graph, config=config or bench_config(),
                             seed=seed, in_memory_threshold=threshold)
    return _record(result.metrics, output_size=len(result.forest),
                   phases=result.phases)


def run_ampc_two_cycle(graph: Graph, *,
                       config: Optional[ClusterConfig] = None,
                       seed: int = 0,
                       session: Optional[Session] = None) -> Dict[str, Any]:
    """Run the AMPC 1-vs-2-Cycle and return its metrics record."""
    result = _session(config, session).run("two-cycle", graph, seed=seed)
    return _ampc_record(result)


def run_ampc_components(graph: Graph, *,
                        config: Optional[ClusterConfig] = None,
                        seed: int = 0,
                        session: Optional[Session] = None) -> Dict[str, Any]:
    """Run the AMPC connected components and return its metrics record."""
    result = _session(config, session).run("components", graph, seed=seed)
    return _ampc_record(result)


def run_ampc_pagerank(graph: Graph, *,
                      config: Optional[ClusterConfig] = None,
                      seed: int = 0,
                      session: Optional[Session] = None,
                      **params: Any) -> Dict[str, Any]:
    """Run the AMPC Monte-Carlo PageRank and return its metrics record."""
    result = _session(config, session).run("pagerank", graph, seed=seed,
                                           **params)
    return _ampc_record(result)


def run_mpc_local_contraction(graph: Graph, *,
                              config: Optional[ClusterConfig] = None,
                              seed: int = 0,
                              in_memory_threshold: Optional[int] = None
                              ) -> Dict[str, Any]:
    """Run the MPC local-contraction connectivity baseline."""
    threshold = in_memory_threshold or max(64, graph.num_edges // 20)
    result = mpc_local_contraction_cc(
        graph, config=config or bench_config(), seed=seed,
        in_memory_threshold=threshold,
    )
    return _record(result.metrics, output_size=result.num_components,
                   phases=result.phases,
                   vertices_per_phase=result.vertices_per_phase)
