"""Heavy-light decomposition with tuple-valued weights.

Algorithm 5 compares (weight, endpoint, endpoint) order keys, not floats;
the decomposition takes custom infinity sentinels for that.  These tests
cover the tuple-key path end to end.
"""

import math

from repro.trees import HeavyLightDecomposition, LCAIndex, RootedForest

NEG = (float("-inf"), -1, -1)
POS = (float("inf"), -1, -1)


def _tuple_weights(forest, base):
    """weight(v -> parent) = (base[v], min, max) order keys."""
    def weight(v):
        parent = forest.parent[v]
        return (base[v], min(v, parent), max(v, parent))
    return weight


def test_tuple_weights_path():
    forest = RootedForest(4, [(0, 1), (1, 2), (2, 3)])
    base = {1: 5.0, 2: 1.0, 3: 9.0}
    hld = HeavyLightDecomposition(forest, _tuple_weights(forest, base),
                                  neg_infinity=NEG, pos_infinity=POS)
    assert hld.max_edge_to_ancestor(3, 0)[0] == 9.0
    assert hld.max_edge_to_ancestor(2, 0)[0] == 5.0


def test_tuple_weights_tie_break_by_endpoints():
    # Equal base weights: the tuple order disambiguates deterministically.
    forest = RootedForest(4, [(0, 1), (1, 2), (2, 3)])
    base = {1: 2.0, 2: 2.0, 3: 2.0}
    hld = HeavyLightDecomposition(forest, _tuple_weights(forest, base),
                                  neg_infinity=NEG, pos_infinity=POS)
    assert hld.max_edge_to_ancestor(3, 0) == (2.0, 2, 3)


def test_tuple_weights_cross_tree_sentinel():
    forest = RootedForest(4, [(0, 1), (2, 3)])
    base = {1: 1.0, 3: 1.0}
    hld = HeavyLightDecomposition(forest, _tuple_weights(forest, base),
                                  neg_infinity=NEG, pos_infinity=POS)
    lca = LCAIndex(forest)
    assert hld.max_edge_on_path(0, 2, lca) == POS


def test_tuple_weights_empty_path_sentinel():
    forest = RootedForest(3, [(0, 1), (1, 2)])
    base = {1: 1.0, 2: 2.0}
    hld = HeavyLightDecomposition(forest, _tuple_weights(forest, base),
                                  neg_infinity=NEG, pos_infinity=POS)
    assert hld.max_edge_to_ancestor(1, 1) == NEG


def test_tuple_weights_branching_tree():
    #      0
    #    / | \
    #   1  2  3
    #      |
    #      4
    forest = RootedForest(5, [(0, 1), (0, 2), (0, 3), (2, 4)])
    base = {1: 3.0, 2: 1.0, 3: 2.0, 4: 7.0}
    hld = HeavyLightDecomposition(forest, _tuple_weights(forest, base),
                                  neg_infinity=NEG, pos_infinity=POS)
    lca = LCAIndex(forest)
    assert hld.max_edge_on_path(1, 4, lca)[0] == 7.0
    assert hld.max_edge_on_path(1, 3, lca)[0] == 3.0
