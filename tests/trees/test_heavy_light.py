"""Tests for heavy-light decomposition path-maximum queries."""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trees import HeavyLightDecomposition, LCAIndex, RootedForest


def _weighted_random_tree(n, seed):
    """Random tree plus a weight for each (child -> parent) edge."""
    rng = random.Random(seed)
    edges = []
    weight_to_parent = {}
    for v in range(1, n):
        parent = rng.randrange(v)
        edges.append((parent, v))
    forest = RootedForest(n, edges, roots=[0])
    for v in range(1, n):
        weight_to_parent[v] = rng.random()
    return forest, weight_to_parent


def _naive_path_max(forest, weights, u, v):
    # Collect u's ancestors, find LCA, take max along both sides.
    ancestors = {}
    x, depth = u, 0
    while x != -1:
        ancestors[x] = depth
        x = forest.parent[x]
        depth += 1
    x = v
    while x not in ancestors:
        x = forest.parent[x]
    lca = x
    best = -math.inf
    for start in (u, v):
        x = start
        while x != lca:
            best = max(best, weights[x])
            x = forest.parent[x]
    return best


class TestHeavyLight:
    def test_path_graph_single_heavy_path(self):
        forest = RootedForest(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        weights = {1: 1.0, 2: 5.0, 3: 2.0, 4: 3.0}
        hld = HeavyLightDecomposition(forest, weights.__getitem__)
        assert len(hld.heavy_paths()) == 1
        assert hld.max_edge_to_ancestor(4, 0) == 5.0
        assert hld.max_edge_to_ancestor(4, 2) == 3.0
        assert hld.max_edge_to_ancestor(2, 2) == -math.inf

    def test_star_all_light_but_one(self):
        forest = RootedForest(5, [(0, 1), (0, 2), (0, 3), (0, 4)])
        weights = {1: 1.0, 2: 2.0, 3: 3.0, 4: 4.0}
        hld = HeavyLightDecomposition(forest, weights.__getitem__)
        # One heavy child, three light edges -> 4 heavy paths total.
        assert len(hld.heavy_paths()) == 4
        for leaf, w in weights.items():
            assert hld.max_edge_to_ancestor(leaf, 0) == w

    def test_max_edge_on_path_across_lca(self):
        #     0
        #    / \
        #   1   2
        #   |   |
        #   3   4
        forest = RootedForest(5, [(0, 1), (0, 2), (1, 3), (2, 4)])
        weights = {1: 1.0, 2: 9.0, 3: 2.0, 4: 3.0}
        hld = HeavyLightDecomposition(forest, weights.__getitem__)
        lca = LCAIndex(forest)
        assert hld.max_edge_on_path(3, 4, lca) == 9.0
        assert hld.max_edge_on_path(3, 1, lca) == 2.0

    def test_cross_tree_is_infinite(self):
        forest = RootedForest(4, [(0, 1), (2, 3)])
        weights = {1: 1.0, 3: 2.0}
        hld = HeavyLightDecomposition(forest, weights.__getitem__)
        lca = LCAIndex(forest)
        assert hld.max_edge_on_path(0, 2, lca) == math.inf

    def test_light_edge_count_is_logarithmic(self):
        # Lemma B.1: O(log n) light edges above any vertex.
        forest, weights = _weighted_random_tree(500, seed=3)
        hld = HeavyLightDecomposition(forest, weights.__getitem__)
        bound = 2 * math.log2(500) + 2
        for v in range(500):
            assert hld.num_light_edges_above(v) <= bound


@given(
    st.integers(min_value=2, max_value=60),
    st.integers(min_value=0, max_value=999),
)
@settings(max_examples=40, deadline=None)
def test_path_max_matches_naive(n, seed):
    forest, weights = _weighted_random_tree(n, seed)
    hld = HeavyLightDecomposition(forest, weights.__getitem__)
    lca = LCAIndex(forest)
    rng = random.Random(seed + 1)
    for _ in range(15):
        u, v = rng.randrange(n), rng.randrange(n)
        if u == v:
            continue
        expected = _naive_path_max(forest, weights, u, v)
        assert hld.max_edge_on_path(u, v, lca) == expected
