"""Retry backoff: full jitter, max-delay ceiling, deterministic with a seed."""

import random

from repro.distdht.sockets import DEFAULT_MAX_BACKOFF_S, _NodeClient


def _client(**kwargs):
    defaults = dict(timeout=0.1, retries=5, backoff_s=0.05, pool_size=0)
    defaults.update(kwargs)
    return _NodeClient("127.0.0.1", 1, **defaults)


class TestBackoffSchedule:
    def test_delay_bounded_by_exponential_envelope(self):
        client = _client(rng=random.Random(123))
        for attempt in range(6):
            ceiling = min(DEFAULT_MAX_BACKOFF_S, 0.05 * (2 ** attempt))
            for _ in range(50):
                delay = client._backoff_delay(attempt)
                assert 0.0 <= delay <= ceiling

    def test_max_delay_ceiling_binds(self):
        client = _client(backoff_s=1.0, max_backoff_s=0.25,
                         rng=random.Random(7))
        # 1.0 * 2**10 would be ~17 minutes without the cap.
        assert all(client._backoff_delay(10) <= 0.25 for _ in range(100))

    def test_seeded_rng_gives_deterministic_schedule(self):
        schedule_a = [_client(rng=random.Random(42))._backoff_delay(i)
                      for i in range(5)]
        schedule_b = [_client(rng=random.Random(42))._backoff_delay(i)
                      for i in range(5)]
        assert schedule_a == schedule_b

    def test_distinct_clients_jitter_apart(self):
        # The point of full jitter: two clients that fail at the same
        # instant must not sleep the same amount and retry in lockstep.
        a = _client(rng=random.Random(1))
        b = _client(rng=random.Random(2))
        assert [a._backoff_delay(i) for i in range(4)] != \
               [b._backoff_delay(i) for i in range(4)]

    def test_unseeded_default_rng_still_bounded(self):
        client = _client()
        assert 0.0 <= client._backoff_delay(3) <= 0.05 * 8
