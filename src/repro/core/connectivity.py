"""AMPC connectivity (Theorem 1) and forest connectivity (Proposition 3.2).

The paper obtains O(1)-round connectivity from the MSF algorithm: compute
any spanning forest (MSF under arbitrary weights), then resolve component
labels with the *forest connectivity* routine, which repeatedly shrinks the
forest by truncated local searches:

1. every vertex explores its tree (cheapest-first, up to a budget) until it
   meets a higher-priority vertex, producing a pointer;
2. pointer trees are contracted to their roots via pointer jumping;
3. the contracted forest repeats until no edges remain — O(1/epsilon)
   iterations, since each one shrinks the vertex count by ~n^epsilon.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.ampc.cluster import ClusterConfig
from repro.ampc.metrics import Metrics
from repro.ampc.runtime import AMPCRuntime
from repro.api.incremental import touched_edges
from repro.api.registry import AlgorithmSpec, ParamSpec, register_algorithm
from repro.core.msf import PreparedMSF, ampc_msf, prepare_msf, update_msf
from repro.core.ranks import hash_rank
from repro.dataflow.dofn import DoFn, MachineContext
from repro.graph.graph import Graph, WeightedGraph, edge_key

EdgeId = Tuple[int, int]


@dataclass
class ConnectivityResult:
    """Component labels (one representative vertex id per component)."""

    labels: List[int]
    metrics: Metrics
    rounds: int = 0
    #: iterations the forest-connectivity loop needed
    iterations: int = 0
    #: spanning forest used (empty when called on a forest directly)
    forest: List[EdgeId] = field(default_factory=list)


class _ForestSearch(DoFn):
    """Truncated cheapest-id-first search within the forest.

    Stops on the exploration budget, on exhausting the tree, or on reaching
    a higher-priority (lower-rank) vertex — in which case it emits a
    pointer to it (the F edge of Proposition 3.2's shrink step).
    """

    def __init__(self, store, ranks: Dict[int, float], budget: int):
        self._store = store
        self._ranks = ranks
        self._budget = budget

    def process(self, element, ctx):
        vertex, neighbors = element
        ranks = self._ranks
        my_rank = (ranks[vertex], vertex)
        visited = {vertex}
        frontier = sorted(neighbors)
        while frontier:
            if len(visited) >= self._budget:
                break
            nxt = frontier.pop(0)
            if nxt in visited:
                continue
            visited.add(nxt)
            if (ranks[nxt], nxt) < my_rank:
                yield (vertex, nxt)
                return
            fetched = ctx.lookup(self._store, nxt) or ()
            for u in fetched:
                if u not in visited:
                    frontier.append(u)
            frontier.sort()


class _PointerJump(DoFn):
    """Chase pointers to roots (per-machine memoized)."""

    def __init__(self, store):
        self._store = store
        self._cache: Optional[Dict[int, int]] = None

    def start_machine(self, ctx: MachineContext) -> None:
        self._cache = {} if ctx.caching_enabled else None

    def process(self, element, ctx):
        vertex = element
        chain = []
        current = vertex
        while True:
            if self._cache is not None and current in self._cache:
                ctx.note_cache_hit()
                current = self._cache[current]
                break
            parent = ctx.lookup(self._store, current)
            if parent is None or parent == current:
                break
            chain.append(current)
            current = parent
        if self._cache is not None:
            for node in chain:
                self._cache[node] = current
        yield (vertex, current)


def ampc_forest_connectivity(num_vertices: int,
                             forest_edges: Iterable[EdgeId], *,
                             runtime: Optional[AMPCRuntime] = None,
                             config: Optional[ClusterConfig] = None,
                             seed: int = 0,
                             epsilon: float = 0.5,
                             max_iterations: int = 64) -> ConnectivityResult:
    """Proposition 3.2: component labels of a forest in O(1/epsilon) rounds."""
    if runtime is None:
        runtime = AMPCRuntime(config=config)
    metrics = runtime.metrics

    #: global label composition: original vertex -> current representative
    label: List[int] = list(range(num_vertices))
    current_edges: List[EdgeId] = [edge_key(u, v) for u, v in forest_edges]
    iterations = 0
    while current_edges:
        iterations += 1
        if iterations > max_iterations:
            raise RuntimeError("forest connectivity did not converge")
        vertices = sorted({x for edge in current_edges for x in edge})
        ranks = {v: hash_rank(seed, iterations, v) for v in vertices}
        budget = max(2, math.ceil(len(vertices) ** (epsilon / 2.0)))

        # Adjacency of the current forest into the DHT (1 shuffle + write).
        adjacency: Dict[int, List[int]] = {v: [] for v in vertices}
        for u, v in current_edges:
            adjacency[u].append(v)
            adjacency[v].append(u)
        with metrics.phase("ForestAdjacency"):
            nodes = runtime.pipeline.from_items(
                [(v, tuple(sorted(nbrs))) for v, nbrs in adjacency.items()]
            ).repartition(lambda record: record[0], name="place-forest")
            store = runtime.new_store(f"forest-adj-i{iterations}")
            runtime.write_store(nodes, store,
                                key_fn=lambda record: record[0],
                                value_fn=lambda record: record[1])
        runtime.next_round()

        # Truncated searches produce pointers; jump them to roots.
        with metrics.phase("ForestSearch"):
            pointers = nodes.par_do(_ForestSearch(store, ranks, budget),
                                    name="forest-search")
        with metrics.phase("ForestPointerJump"):
            pointer_store = runtime.new_store(f"forest-ptr-i{iterations}")
            runtime.write_store(
                pointers.repartition(lambda p: p[0], name="place-ptrs"),
                pointer_store,
                key_fn=lambda p: p[0], value_fn=lambda p: p[1],
            )
            runtime.next_round()
            roots = runtime.pipeline.from_items(vertices).par_do(
                _PointerJump(pointer_store), name="forest-jump"
            )
        runtime.next_round()

        root_of = dict(roots.collect())
        # Compose into the global labels and contract the forest.
        for v in range(num_vertices):
            label[v] = root_of.get(label[v], label[v])
        contracted: Set[EdgeId] = set()
        for u, v in current_edges:
            ru, rv = root_of.get(u, u), root_of.get(v, v)
            if ru != rv:
                contracted.add(edge_key(ru, rv))
        current_edges = sorted(contracted)

    return ConnectivityResult(labels=label, metrics=metrics,
                              rounds=metrics.rounds, iterations=iterations)


@dataclass
class PreparedComponents:
    """Connectivity preprocessing: the rank-weighted graph's MSF input.

    Connectivity derives a weighted graph from hashed pseudo-random edge
    weights and runs the MSF pipeline on it; caching that derived graph
    plus its DHT-resident sorted adjacency skips the SortGraph shuffle on
    repeat runs.
    """

    seed: int
    weighted: WeightedGraph
    msf: "PreparedMSF"


def prepare_components(graph: Graph, *,
                       runtime: Optional[AMPCRuntime] = None,
                       config: Optional[ClusterConfig] = None,
                       seed: int = 0) -> PreparedComponents:
    """Derive the rank-weighted graph and stage its MSF preprocessing."""
    if runtime is None:
        runtime = AMPCRuntime(config=config)
    weighted = WeightedGraph.from_graph(
        graph, lambda u, v: hash_rank(seed, *edge_key(u, v))
    )
    return PreparedComponents(
        seed=seed, weighted=weighted,
        msf=prepare_msf(weighted, runtime=runtime, seed=seed),
    )


def update_components(prepared: PreparedComponents, graph: Graph, *,
                      runtime: Optional[AMPCRuntime] = None,
                      config: Optional[ClusterConfig] = None,
                      seed: int = 0,
                      insertions=(), deletions=()) -> PreparedComponents:
    """Patch the connectivity preprocessing after an edge batch.

    The derived rank-weighted graph mirrors the input edge set with
    hashed per-edge weights, so a batch touches exactly the same edges
    there; the weighted twin is copied (a flat adjacency copy — no
    hashing, sorting or shuffling) and the MSF artifact is patched
    through :func:`~repro.core.msf.update_msf` in O(batch).
    """
    if runtime is None:
        runtime = AMPCRuntime(config=config)
    if prepared.seed != seed:
        raise ValueError(
            f"prepared input was built for seed {prepared.seed}, "
            f"this update uses seed {seed}"
        )
    weighted = prepared.weighted.copy()
    weighted_insertions = []
    weighted_deletions = []
    for a, b in touched_edges(insertions, deletions):
        present = graph.has_edge(a, b)
        if present and not weighted.has_edge(a, b):
            weight = hash_rank(seed, a, b)
            weighted.add_edge(a, b, weight)
            weighted_insertions.append((a, b, weight))
        elif not present and weighted.has_edge(a, b):
            weighted.remove_edge(a, b)
            weighted_deletions.append((a, b))
    return PreparedComponents(
        seed=seed, weighted=weighted,
        msf=update_msf(prepared.msf, weighted, runtime=runtime, seed=seed,
                       insertions=weighted_insertions,
                       deletions=weighted_deletions),
    )


def ampc_connected_components(graph: Graph, *,
                              runtime: Optional[AMPCRuntime] = None,
                              config: Optional[ClusterConfig] = None,
                              seed: int = 0,
                              epsilon: float = 0.5,
                              prepared: Optional[PreparedComponents] = None
                              ) -> ConnectivityResult:
    """Theorem 1 connectivity: spanning forest + forest connectivity.

    Uses the practical MSF pipeline on hashed pseudo-random edge weights
    (any spanning forest works; random weights keep the Prim searches
    balanced), then labels components with forest connectivity.  Section
    5.7 notes this route's cost is dominated by the MSF contraction — the
    same effect is visible in the returned metrics.
    """
    if runtime is None:
        runtime = AMPCRuntime(config=config)
    if prepared is None:
        prepared = prepare_components(graph, runtime=runtime, seed=seed)
    elif prepared.seed != seed:
        raise ValueError(
            f"prepared input was built for seed {prepared.seed}, "
            f"this run uses seed {seed}"
        )
    rounds_before = runtime.metrics.rounds
    msf_result = ampc_msf(prepared.weighted, runtime=runtime, seed=seed,
                          epsilon=epsilon, prepared=prepared.msf)
    forest_result = ampc_forest_connectivity(
        graph.num_vertices, msf_result.forest, runtime=runtime,
        seed=seed + 1, epsilon=epsilon,
    )
    return ConnectivityResult(
        labels=forest_result.labels,
        metrics=runtime.metrics,
        # round 1 is the MSF preparation (possibly cache-served)
        rounds=runtime.metrics.rounds - rounds_before + 1,
        iterations=forest_result.iterations,
        forest=msf_result.forest,
    )


# ---------------------------------------------------------------------------
# Registry spec (the Session/CLI entry point)
# ---------------------------------------------------------------------------


def _summarize(result: ConnectivityResult, graph: Graph) -> Dict[str, int]:
    return {
        "output_size": len(set(result.labels)),
        "iterations": result.iterations,
        "forest_size": len(result.forest),
        "rounds": result.rounds,
    }


def _describe(result: ConnectivityResult, graph: Graph, params) -> str:
    return (f"connected components: {len(set(result.labels))} "
            f"({result.iterations} forest-connectivity iterations)")


register_algorithm(AlgorithmSpec(
    name="components",
    summary="connected components",
    input_kind="graph",
    run=ampc_connected_components,
    prepare=prepare_components,
    update=update_components,
    summarize=_summarize,
    describe=_describe,
    params=(
        ParamSpec("epsilon", float, 0.5,
                  "exploration-budget exponent of the underlying MSF and "
                  "forest-connectivity searches"),
    ),
    prep_seed_sensitive=True,  # the derived edge weights depend on the seed
))
