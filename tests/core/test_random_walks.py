"""Tests for the random-walk / PageRank extension (Section 5.7)."""

import pytest

from repro.ampc import ClusterConfig
from repro.core.random_walks import (
    ampc_pagerank,
    ampc_random_walks,
    pagerank_power_iteration,
)
from repro.graph import Graph, complete_graph, cycle_graph, path_graph, star_graph
from repro.graph.generators import barabasi_albert_graph

CONFIG = ClusterConfig(num_machines=4)


class TestRandomWalks:
    def test_walk_counts(self):
        graph = cycle_graph(20)
        result = ampc_random_walks(graph, config=CONFIG, seed=1,
                                   walks_per_vertex=2, walk_length=5)
        assert len(result.endpoints) == 40
        # Every walk contributes walk_length + 1 visits on a cycle.
        assert sum(result.visits) == 40 * 6

    def test_endpoints_within_distance(self):
        graph = cycle_graph(30)
        result = ampc_random_walks(graph, config=CONFIG, seed=2,
                                   walk_length=3)
        for (start, _), end in result.endpoints.items():
            distance = min((start - end) % 30, (end - start) % 30)
            assert distance <= 3

    def test_zero_length_walks_stay_home(self):
        graph = path_graph(5)
        result = ampc_random_walks(graph, config=CONFIG, walk_length=0)
        assert all(start == end
                   for (start, _), end in result.endpoints.items())

    def test_dangling_vertices_terminate(self):
        graph = Graph(3)
        graph.add_edge(0, 1)  # vertex 2 is isolated
        result = ampc_random_walks(graph, config=CONFIG, walk_length=4)
        assert result.endpoints[(2, 0)] == 2

    def test_two_rounds_one_shuffle(self):
        """The walk engine inherits the AMPC shape: adaptive lookups do the
        stepping, not shuffles."""
        graph = barabasi_albert_graph(100, 2, seed=3)
        result = ampc_random_walks(graph, config=CONFIG, seed=3,
                                   walk_length=8)
        assert result.metrics.shuffles == 1
        assert result.metrics.rounds == 2
        assert result.metrics.kv_reads > 0

    def test_deterministic(self):
        graph = barabasi_albert_graph(60, 2, seed=4)
        a = ampc_random_walks(graph, config=CONFIG, seed=4, walk_length=6)
        b = ampc_random_walks(graph, config=CONFIG, seed=4, walk_length=6)
        assert a.endpoints == b.endpoints

    def test_invalid_parameters(self):
        graph = path_graph(3)
        with pytest.raises(ValueError):
            ampc_random_walks(graph, config=CONFIG, walk_length=-1)
        with pytest.raises(ValueError):
            ampc_random_walks(graph, config=CONFIG, walks_per_vertex=0)


class TestPowerIteration:
    def test_uniform_on_regular_graphs(self):
        scores = pagerank_power_iteration(cycle_graph(10))
        assert all(abs(s - 0.1) < 1e-6 for s in scores)

    def test_sums_to_one(self):
        graph = barabasi_albert_graph(50, 2, seed=5)
        scores = pagerank_power_iteration(graph)
        assert abs(sum(scores) - 1.0) < 1e-9

    def test_star_center_dominates(self):
        scores = pagerank_power_iteration(star_graph(20))
        assert scores[0] > max(scores[1:]) * 3

    def test_empty_graph(self):
        assert pagerank_power_iteration(Graph(0)) == []


class TestMonteCarloPageRank:
    def test_close_to_power_iteration(self):
        graph = barabasi_albert_graph(80, 2, seed=6)
        exact = pagerank_power_iteration(graph)
        estimate = ampc_pagerank(graph, config=CONFIG, seed=6,
                                 walks_per_vertex=64)
        l1 = sum(abs(a - b) for a, b in zip(exact, estimate.scores))
        assert l1 < 0.25  # Monte-Carlo accuracy at this walk budget

    def test_identifies_the_hub(self):
        graph = star_graph(15)
        result = ampc_pagerank(graph, config=CONFIG, seed=7,
                               walks_per_vertex=32)
        assert result.scores[0] == max(result.scores)

    def test_more_walks_tighter_estimate(self):
        graph = barabasi_albert_graph(60, 2, seed=8)
        exact = pagerank_power_iteration(graph)

        def l1_error(walks):
            result = ampc_pagerank(graph, config=CONFIG, seed=8,
                                   walks_per_vertex=walks)
            return sum(abs(a - b) for a, b in zip(exact, result.scores))

        assert l1_error(128) < l1_error(4) + 0.05

    def test_constant_rounds(self):
        graph = barabasi_albert_graph(60, 2, seed=9)
        result = ampc_pagerank(graph, config=CONFIG, seed=9,
                               walks_per_vertex=8)
        assert result.metrics.rounds == 2
        assert result.metrics.shuffles == 1

    def test_invalid_damping(self):
        with pytest.raises(ValueError):
            ampc_pagerank(path_graph(3), config=CONFIG, damping=1.5)

    def test_scores_normalized(self):
        graph = complete_graph(12)
        result = ampc_pagerank(graph, config=CONFIG, seed=10,
                               walks_per_vertex=16)
        # Complete-path estimator: expected mass sums to ~1.
        assert 0.6 < sum(result.scores) < 1.4
