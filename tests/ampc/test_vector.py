"""The vectorized splitmix64 kernels are bit-for-bit twins of the scalars.

:mod:`repro.ampc.vector` re-implements the hashing/rank kernels over
numpy uint64 arrays so the columnar data plane can place and rank whole
shards at a time.  Placement and priorities decide every simulated
metric, so each kernel must agree with its scalar reference exactly —
not approximately — on every input either side can see.
"""

import random

import pytest

from repro.ampc.hashing import _MASK, _splitmix64, stable_hash
from repro.ampc.vector import HAVE_NUMPY
from repro.core.ranks import hash_rank, vertex_ranks

if HAVE_NUMPY:
    from repro.ampc.vector import (hash_ranks, np, placement_ids,
                                   splitmix64_u64, stable_hash_u64,
                                   vertex_ranks_u64)

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="vectorized kernels need numpy")

SEED = 20260730


def _random_u64s(rng, count):
    boundary = [0, 1, _MASK - 1, _MASK, (1 << 63) - 1, 1 << 63]
    values = [rng.randrange(0, 1 << 64) for _ in range(count)]
    return boundary + values


class TestSplitmixKernels:
    def test_splitmix64_matches_scalar(self):
        rng = random.Random(SEED)
        keys = _random_u64s(rng, 2000)
        got = splitmix64_u64(np.array(keys, dtype=np.uint64))
        for key, value in zip(keys, got.tolist()):
            assert value == _splitmix64(key), key

    def test_stable_hash_matches_scalar(self):
        rng = random.Random(SEED + 1)
        keys = _random_u64s(rng, 2000)
        got = stable_hash_u64(np.array(keys, dtype=np.uint64))
        for key, value in zip(keys, got.tolist()):
            assert value == stable_hash(key), key

    def test_placement_matches_scalar_modulus(self):
        rng = random.Random(SEED + 2)
        keys = [rng.randrange(0, 1 << 32) for _ in range(1000)]
        for modulus in (1, 2, 3, 4, 7, 16, 61):
            got = placement_ids(np.array(keys, dtype=np.int64), modulus)
            for key, value in zip(keys, got.tolist()):
                assert value == stable_hash(key) % modulus, (key, modulus)


class TestRankKernels:
    def test_hash_ranks_single_item(self):
        rng = random.Random(SEED + 3)
        items = [rng.randrange(0, 1 << 40) for _ in range(1500)]
        for seed in (0, 3, 12345):
            got = hash_ranks(seed, np.array(items, dtype=np.uint64))
            for item, value in zip(items, got.tolist()):
                assert value == hash_rank(seed, item), (seed, item)

    def test_hash_ranks_item_pairs(self):
        rng = random.Random(SEED + 4)
        a = [rng.randrange(0, 1 << 32) for _ in range(1500)]
        b = [rng.randrange(0, 1 << 32) for _ in range(1500)]
        got = hash_ranks(7, np.array(a, dtype=np.uint64),
                         np.array(b, dtype=np.uint64))
        for x, y, value in zip(a, b, got.tolist()):
            assert value == hash_rank(7, x, y), (x, y)

    def test_vertex_ranks_match_scalar_list(self):
        for seed in (0, 1, 99):
            got = vertex_ranks_u64(257, seed)
            assert got.tolist() == vertex_ranks(257, seed)

    def test_ranks_land_in_unit_interval(self):
        got = vertex_ranks_u64(4096, 11)
        assert float(got.min()) >= 0.0
        assert float(got.max()) < 1.0
