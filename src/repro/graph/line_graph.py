"""Line graph construction.

The maximal matching algorithm of Section 4 relies on the classical fact
that a maximal independent set of the line graph L(G) is a maximal matching
of G.  The paper is explicit that L(G) can be Theta(m * Delta) large, which
is why Algorithm 4 only ever materializes line graphs of *sampled* subgraphs
whose maximum degree has been knocked down; :func:`line_graph_size` exposes
the size so callers (and tests) can check the space bound before building.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.graph.graph import Graph, edge_key

EdgeId = Tuple[int, int]


def line_graph_size(graph: Graph) -> int:
    """Number of edges of L(G): sum over vertices of C(deg, 2)."""
    return sum(
        graph.degree(v) * (graph.degree(v) - 1) // 2 for v in graph.vertices()
    )


def line_graph(graph: Graph) -> Tuple[Graph, List[EdgeId]]:
    """Build L(G).

    Returns ``(L, edge_of_vertex)`` where vertex ``i`` of ``L`` corresponds
    to the undirected edge ``edge_of_vertex[i]`` of ``G`` and two vertices of
    ``L`` are adjacent iff their edges share an endpoint in ``G``.
    """
    edge_of_vertex: List[EdgeId] = [edge_key(u, v) for u, v in graph.edges()]
    index_of_edge: Dict[EdgeId, int] = {
        edge: i for i, edge in enumerate(edge_of_vertex)
    }
    lg = Graph(len(edge_of_vertex))
    for v in graph.vertices():
        incident = [index_of_edge[edge_key(v, u)] for u in graph.neighbors(v)]
        for a in range(len(incident)):
            for b in range(a + 1, len(incident)):
                lg.add_edge(incident[a], incident[b])
    return lg, edge_of_vertex
