"""Monte-Carlo PageRank over the AMPC key-value store.

Section 5.7 of the paper points at random-walk problems (PageRank,
Personalized PageRank, embeddings) as the natural next AMPC applications
"since it efficiently supports random access".  This example implements
that suggestion: every walk steps through adaptive DHT lookups, so the
whole estimator runs in **two AMPC rounds with a single shuffle**,
regardless of walk length — the same workload in MPC would pay one round
per walk step.

Run with::

    python examples/pagerank_walks.py
"""

from repro.ampc import ClusterConfig
from repro.core import ampc_pagerank, pagerank_power_iteration
from repro.graph import barabasi_albert_graph


def main():
    graph = barabasi_albert_graph(400, attach=3, seed=13)
    config = ClusterConfig(num_machines=10)
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges, "
          f"max degree {graph.max_degree()}")

    result = ampc_pagerank(graph, config=config, seed=13,
                           walks_per_vertex=64)
    exact = pagerank_power_iteration(graph)

    print(f"\nAMPC Monte-Carlo PageRank: rounds = {result.metrics.rounds}, "
          f"shuffles = {result.metrics.shuffles}, "
          f"walk steps = {result.total_steps:,}, "
          f"KV reads = {result.metrics.kv_reads:,}")
    l1 = sum(abs(a - b) for a, b in zip(exact, result.scores))
    print(f"L1 error vs power iteration: {l1:.4f}")

    top_mc = sorted(range(graph.num_vertices),
                    key=lambda v: -result.scores[v])[:5]
    top_exact = sorted(range(graph.num_vertices),
                       key=lambda v: -exact[v])[:5]
    print(f"\ntop-5 by Monte-Carlo: {top_mc}")
    print(f"top-5 by power iter:  {top_exact}")
    overlap = len(set(top_mc) & set(top_exact))
    print(f"overlap: {overlap}/5")
    assert overlap >= 3, "the hubs should be unmistakable"

    # An MPC implementation pays a round per walk step: the expected walk
    # length is damping/(1-damping) ~ 5.7, each step a shuffle.
    expected_steps = result.total_steps / (64 * graph.num_vertices)
    print(f"\nMPC equivalent: ~{expected_steps:.1f} shuffles per walk wave "
          f"vs AMPC's single shuffle total.")


if __name__ == "__main__":
    main()
