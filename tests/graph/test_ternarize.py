"""Tests for graph ternarization (Algorithm 2, line 2)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import WeightedGraph, cycle_graph, star_graph, ternarize
from repro.graph.generators import erdos_renyi_gnm, random_weighted
from repro.graph.properties import connected_component_sizes
from repro.sequential import kruskal_msf, msf_weight


def test_low_degree_graph_unchanged_in_shape():
    graph = random_weighted(cycle_graph(8), seed=1)
    result = ternarize(graph)
    assert result.graph.num_vertices == 8
    assert result.graph.num_edges == 8
    assert all(not result.is_dummy_edge(u, v) for u, v, _ in result.graph.edges())


def test_star_expansion():
    graph = random_weighted(star_graph(6), seed=2)  # center degree 5
    result = ternarize(graph)
    # Center becomes a 5-cycle; leaves stay single vertices.
    assert result.graph.num_vertices == 5 + 5
    # 5 dummy cycle edges + 5 real edges.
    assert result.graph.num_edges == 10
    assert result.graph.max_degree() <= 3


def test_dummy_weight_below_all_real_weights():
    graph = random_weighted(star_graph(6), seed=3)
    result = ternarize(graph)
    min_real = min(w for _, _, w in graph.edges())
    assert result.dummy_weight < min_real


def test_projection_recovers_original_edges():
    graph = random_weighted(star_graph(6), seed=4)
    result = ternarize(graph)
    real_edges = [
        (u, v) for u, v, _ in result.graph.edges()
        if not result.is_dummy_edge(u, v)
    ]
    projected = result.project_edges(real_edges)
    assert sorted(projected) == sorted((u, v) for u, v, _ in graph.edges())


def test_connectivity_preserved():
    graph = random_weighted(erdos_renyi_gnm(30, 60, seed=5), seed=5)
    result = ternarize(graph)
    original_sizes = len(connected_component_sizes(graph.unweighted()))
    # Isolated original vertices stay isolated; expanded components stay whole.
    ternarized_sizes = len(connected_component_sizes(result.graph.unweighted()))
    assert ternarized_sizes == original_sizes


def test_msf_weight_preserved_via_projection():
    """MSF(ternarized) projected back equals MSF(original)."""
    graph = random_weighted(erdos_renyi_gnm(25, 70, seed=6), seed=6)
    result = ternarize(graph)
    ternarized_msf = kruskal_msf(result.graph)
    projected = result.project_edges(ternarized_msf)
    original_msf = kruskal_msf(graph)
    assert sorted(projected) == sorted(original_msf)


def test_empty_graph():
    result = ternarize(WeightedGraph(5))
    assert result.graph.num_vertices == 5
    assert result.graph.num_edges == 0


@given(st.integers(min_value=5, max_value=30), st.integers(min_value=0, max_value=99))
@settings(max_examples=25, deadline=None)
def test_ternarize_properties(n, seed):
    m = min(2 * n, n * (n - 1) // 2)
    graph = random_weighted(erdos_renyi_gnm(n, m, seed=seed), seed=seed)
    result = ternarize(graph)
    # Max degree bound is the whole point.
    assert result.graph.max_degree() <= 3
    # Every real edge maps back; counts match.
    real = sum(
        1 for u, v, _ in result.graph.edges() if not result.is_dummy_edge(u, v)
    )
    assert real == graph.num_edges
    # MSF weight is preserved through projection.
    projected = result.project_edges(kruskal_msf(result.graph))
    assert sorted(projected) == sorted(kruskal_msf(graph))
