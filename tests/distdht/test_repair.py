"""Self-healing socket DHT: breaker, hints, read-repair, anti-entropy.

Every test drives real ``DHTNodeServer`` processes-worth of state over
TCP, with the deterministic knobs (``failure_threshold=1``,
``probe_interval_s=0`` + explicit ``probe_now()``, ``retries=0``) so a
kill is observed on the very next operation and recovery happens exactly
when the test asks for it.
"""

import pytest

from repro.distdht import (
    BackedDHTStore,
    NodeOutage,
    RepairReport,
    repair_store,
)
from repro.distdht.backing import TOMBSTONE, record_digest
from repro.distdht.sockets import DHTNodeServer, SocketBackingStore


def make_store(*nodes, **overrides):
    """Replication-2 client with deterministic self-healing knobs."""
    options = dict(replication=2, timeout=5.0, retries=0, backoff_s=0.01,
                   failure_threshold=1, probe_interval_s=0.0)
    options.update(overrides)
    return SocketBackingStore([n.address for n in nodes], **options)


def drop_from_node(node, key):
    """Delete one record from a node's storage behind the client's back."""
    with node._server.data_lock:
        node._server.data.pop(key, None)


class TestCircuitBreaker:
    def test_failures_open_the_circuit_and_reads_skip_it(self):
        with DHTNodeServer() as node_a:
            node_b = DHTNodeServer().start()
            store = make_store(node_a, node_b, repair_on_rejoin=False)
            try:
                store.put(b"k", b"v")
                node_b.close()
                assert store.ping() == [True, False]  # marks b down
                health = store.health()
                assert health["nodes"][1]["down"]
                assert not health["nodes"][0]["down"]
                assert health["counters"]["nodes_marked_down"] == 1
                # replica walks now skip b without paying a timeout
                assert store.get(b"k") == b"v"
                assert store.health()["counters"]["fast_fails"] >= 1
            finally:
                store.close()

    def test_probe_now_recovers_a_restarted_node(self):
        with DHTNodeServer() as node_a:
            node_b = DHTNodeServer().start()
            store = make_store(node_a, node_b, repair_on_rejoin=False)
            try:
                outage = NodeOutage(node_b)
                outage.__enter__()
                store.ping()
                assert store.health()["nodes"][1]["down"]
                assert store.probe_now() == []  # still dead
                node_b = outage.restart()
                assert store.probe_now() == [1]
                health = store.health()
                assert not health["nodes"][1]["down"]
                assert health["counters"]["nodes_recovered"] == 1
                assert health["counters"]["probes"] >= 1
            finally:
                store.close()
                node_b.close()

    def test_all_replicas_down_still_attempts_them(self):
        # half-open fallback: when every replica is marked down the walk
        # tries them anyway, so a quietly-recovered node serves even
        # with no prober configured
        with DHTNodeServer() as node:
            store = SocketBackingStore([node.address], retries=0,
                                       backoff_s=0.01, failure_threshold=1,
                                       probe_interval_s=0.0)
            try:
                store.put(b"k", b"v")
                node.sever_connections()  # drop pools; node stays up
                try:
                    store.get(b"k")
                except ConnectionError:
                    pass
                assert store.get(b"k") == b"v"
            finally:
                store.close()


class TestHintedHandoff:
    def test_writes_for_a_down_node_land_via_hints(self):
        with DHTNodeServer() as node_a:
            node_b = DHTNodeServer().start()
            store = make_store(node_a, node_b, repair_on_rejoin=False)
            try:
                store.put(b"ns|s|live", b"old")
                with NodeOutage(node_b) as outage:
                    store.ping()  # observe the kill -> b marked down
                    store.put(b"ns|s|new", b"fresh")  # parked for b
                    assert store.delete(b"ns|s|live")  # tombstone parked
                    counters = store.health()["counters"]
                    assert counters["hints_parked"] >= 2
                node_b = outage.restarted  # rejoined EMPTY
                assert store.probe_now() == [1]
                counters = store.health()["counters"]
                assert counters["hints_replayed"] >= 2
                # the rejoined node holds the writes it missed, verbatim
                assert store.node_get_record(1, b"ns|s|new") == b"fresh"
                assert store.node_get_record(1, b"ns|s|live") == TOMBSTONE
                # and the client view is consistent: no resurrection
                assert store.get(b"ns|s|new") == b"fresh"
                assert store.get(b"ns|s|live") is None
            finally:
                store.close()
                node_b.close()

    def test_single_node_cluster_has_nowhere_to_park(self):
        with DHTNodeServer() as node:
            store = SocketBackingStore([node.address], retries=0,
                                       backoff_s=0.01, failure_threshold=1,
                                       probe_interval_s=0.0)
            try:
                node.sever_connections()
                store.put(b"k", b"v")  # node still up: lands directly
                assert store.health()["counters"]["hints_parked"] == 0
            finally:
                store.close()


class TestReadRepair:
    def test_failover_read_writes_the_record_back(self):
        with DHTNodeServer() as node_a, DHTNodeServer() as node_b:
            store = make_store(node_a, node_b, repair_on_rejoin=False)
            servers = (node_a, node_b)
            try:
                key = b"ns|s|k"
                store.put(key, b"v")
                primary = store.replicas_for(key)[0]
                drop_from_node(servers[primary], key)
                assert store.node_get_record(primary, key) is None
                assert store.get(key) == b"v"  # served by the replica
                assert store.health()["counters"]["read_repairs"] == 1
                # the primary holds the record again
                assert store.node_get_record(primary, key) == b"v"
            finally:
                store.close()

    def test_read_repair_can_be_disabled(self):
        with DHTNodeServer() as node_a, DHTNodeServer() as node_b:
            store = make_store(node_a, node_b, read_repair=False,
                               repair_on_rejoin=False)
            servers = (node_a, node_b)
            try:
                key = b"ns|s|k"
                store.put(key, b"v")
                primary = store.replicas_for(key)[0]
                drop_from_node(servers[primary], key)
                assert store.get(key) == b"v"
                assert store.health()["counters"]["read_repairs"] == 0
                assert store.node_get_record(primary, key) is None
            finally:
                store.close()


class TestAntiEntropy:
    def test_missing_records_are_copied_until_digests_agree(self):
        with DHTNodeServer() as node_a, DHTNodeServer() as node_b:
            store = make_store(node_a, node_b, repair_on_rejoin=False)
            try:
                keys = [f"ns|s|k{i}".encode() for i in range(20)]
                store.put_many([(key, b"v" + key) for key in keys])
                for key in keys[:5]:
                    drop_from_node(node_b, key)
                report = repair_store(store)
                assert isinstance(report, RepairReport)
                assert report.converged
                assert report.keys_copied == 5
                assert report.keys_checked == 20
                assert report.namespaces["ns|s|"]["copied"] == 5
                assert store.node_digest(0) == store.node_digest(1)
                # a second sweep verifies clean in one round
                again = repair_store(store)
                assert again.converged
                assert again.rounds == 1
                assert again.keys_copied == 0
            finally:
                store.close()

    def test_tombstone_wins_over_a_live_record(self):
        with DHTNodeServer() as node_a, DHTNodeServer() as node_b:
            store = make_store(node_a, node_b, repair_on_rejoin=False)
            servers = (node_a, node_b)
            try:
                key = b"ns|s|dead"
                store.put(key, b"v")
                assert store.delete(key)  # tombstones on both replicas
                # one replica "missed" the delete: it holds a live record
                straggler = store.replicas_for(key)[1]
                with servers[straggler]._server.data_lock:
                    servers[straggler]._server.data[key] = b"v"
                report = repair_store(store)
                assert report.converged
                assert report.tombstones_copied == 1
                # the delete propagated; the record did NOT resurrect
                assert store.node_get_record(straggler, key) == TOMBSTONE
                assert store.get(key) is None
                assert not store.contains(key)
            finally:
                store.close()

    def test_prefix_limits_the_sweep(self):
        with DHTNodeServer() as node_a, DHTNodeServer() as node_b:
            store = make_store(node_a, node_b, repair_on_rejoin=False)
            try:
                store.put(b"ns|x|k", b"1")
                store.put(b"ns|y|k", b"2")
                drop_from_node(node_b, b"ns|x|k")
                drop_from_node(node_b, b"ns|y|k")
                report = repair_store(store, prefix=b"ns|x|")
                assert report.converged
                assert report.keys_copied == 1
                assert store.node_get_record(1, b"ns|y|k") is None
            finally:
                store.close()

    def test_unreachable_cluster_reports_not_converged(self):
        with DHTNodeServer() as node_a, DHTNodeServer() as node_b:
            store = make_store(node_a, node_b, repair_on_rejoin=False)
            store.put(b"k", b"v")
            node_a.close()
            node_b.close()
            try:
                report = repair_store(store)
                assert not report.converged
                assert report.nodes_unreachable == 2
            finally:
                store.close()


class TestRejoinSemantics:
    """A node restarted empty: misses before repair, hits after."""

    def test_empty_rejoin_misses_then_repair_restores(self):
        with DHTNodeServer() as node_a:
            node_b = DHTNodeServer().start()
            store = make_store(node_a, node_b, repair_on_rejoin=False,
                               hinted_handoff=False)
            try:
                store.put(b"ns|s|kept", b"value")
                store.put(b"ns|s|dead", b"doomed")
                assert store.delete(b"ns|s|dead")
                with NodeOutage(node_b) as outage:
                    store.ping()
                node_b = outage.restarted
                assert store.probe_now() == [1]
                # pre-repair (hints were off): the node serves misses
                assert store.node_get_record(1, b"ns|s|kept") is None
                assert store.node_get_record(1, b"ns|s|dead") is None
                report = store.repair()
                assert report.converged
                # post-repair: hits, including the tombstone
                assert store.node_get_record(1, b"ns|s|kept") == b"value"
                assert store.node_get_record(1, b"ns|s|dead") == TOMBSTONE
                assert store.get(b"ns|s|kept") == b"value"
                assert store.get(b"ns|s|dead") is None  # no resurrection
            finally:
                store.close()
                node_b.close()

    def test_rejoin_auto_repair_and_callbacks(self):
        with DHTNodeServer() as node_a:
            node_b = DHTNodeServer().start()
            store = make_store(node_a, node_b)  # repair_on_rejoin=True
            rejoined = []
            store.on_rejoin.append(rejoined.append)
            try:
                store.put(b"ns|s|k1", b"v1")
                with NodeOutage(node_b) as outage:
                    store.ping()
                    store.put(b"ns|s|k2", b"v2")  # hinted
                node_b = outage.restarted
                assert store.probe_now() == [1]
                assert rejoined == [1]
                counters = store.health()["counters"]
                assert counters["auto_repairs"] == 1
                assert counters["hints_replayed"] >= 1
                # full convergence: both nodes hold identical data
                assert store.node_digest(0) == store.node_digest(1)
                assert store.get(b"ns|s|k1") == b"v1"
                assert store.get(b"ns|s|k2") == b"v2"
            finally:
                store.close()
                node_b.close()


class TestBackedStoreRepair:
    def test_repair_is_scoped_to_the_store_namespace(self):
        with DHTNodeServer() as node_a, DHTNodeServer() as node_b:
            backing = make_store(node_a, node_b, repair_on_rejoin=False)
            try:
                backed = BackedDHTStore("s", 4, backing=backing)
                backed.write("k", "payload")
                backing.put(b"unrelated", b"x")
                drop_from_node(node_b, b"unrelated")
                # desync one of the namespace's records too
                namespace_keys = backing.scan(backed._ns)
                drop_from_node(node_b, namespace_keys[0])
                report = backed.repair()
                assert report.converged
                assert report.keys_copied == 1  # not the unrelated key
                assert backing.node_get_record(1, b"unrelated") is None
            finally:
                backing.close()

    def test_repair_is_none_on_backends_without_one(self):
        from repro.distdht import InMemoryBackingStore

        backed = BackedDHTStore("s", 4, backing=InMemoryBackingStore())
        backed.write("k", "v")
        assert backed.repair() is None


class TestDigestHelper:
    def test_record_digest_is_stable_and_short(self):
        assert record_digest(b"abc") == record_digest(b"abc")
        assert record_digest(b"abc") != record_digest(b"abd")
        assert len(record_digest(TOMBSTONE)) == 8
