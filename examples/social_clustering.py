"""Single-linkage hierarchical clustering via AMPC MSF + connectivity.

The paper motivates its MSF algorithm with exactly this application
(Section 1: "one can use this algorithm together with a simple sorting
step, and our connectivity algorithm to find any desired level of a
single-linkage hierarchical clustering").

Recipe:

1. compute the minimum spanning forest of a similarity graph
   (edge weight = distance; here: an embedded point cloud);
2. sort the forest edges by weight;
3. cutting the k-1 heaviest forest edges yields the k-cluster level of the
   single-linkage dendrogram — component labels come from the AMPC forest
   connectivity routine.

Run with::

    python examples/social_clustering.py
"""

import math
import random

from repro.ampc import ClusterConfig
from repro.core import ampc_forest_connectivity, ampc_msf
from repro.graph import WeightedGraph


def make_point_cloud(seed: int = 3):
    """Three well-separated Gaussian blobs in the plane."""
    rng = random.Random(seed)
    centers = [(0.0, 0.0), (8.0, 1.0), (4.0, 7.0)]
    points = []
    truth = []
    for label, (cx, cy) in enumerate(centers):
        for _ in range(40):
            points.append((cx + rng.gauss(0, 0.8), cy + rng.gauss(0, 0.8)))
            truth.append(label)
    return points, truth


def knn_graph(points, k: int = 8) -> WeightedGraph:
    """k-nearest-neighbor similarity graph with Euclidean weights."""
    n = len(points)
    graph = WeightedGraph(n)
    for i, (xi, yi) in enumerate(points):
        distances = sorted(
            (math.hypot(xi - xj, yi - yj), j)
            for j, (xj, yj) in enumerate(points) if j != i
        )
        for distance, j in distances[:k]:
            graph.add_edge(i, j, distance)
    return graph


def single_linkage_level(graph: WeightedGraph, k: int, config, seed=1):
    """Labels of the k-cluster single-linkage level."""
    msf = ampc_msf(graph, config=config, seed=seed)
    # The forest already separates n - |F| components; reach k clusters by
    # additionally dropping the heaviest forest edges ("a simple sorting
    # step", Section 1).
    existing = graph.num_vertices - len(msf.forest)
    cuts = max(0, k - existing)
    edges_by_weight = sorted(
        msf.forest, key=lambda e: graph.weight_order_key(*e)
    )
    kept = edges_by_weight[: max(0, len(edges_by_weight) - cuts)]
    labels = ampc_forest_connectivity(
        graph.num_vertices, kept, config=config, seed=seed + 1
    )
    return labels.labels, msf


def main():
    points, truth = make_point_cloud()
    graph = knn_graph(points)
    config = ClusterConfig(num_machines=8)
    print(f"similarity graph: {graph.num_vertices} points, "
          f"{graph.num_edges} kNN edges")

    labels, msf = single_linkage_level(graph, k=3, config=config)
    print(f"MSF: {len(msf.forest)} edges in {msf.metrics.shuffles} shuffles, "
          f"simulated {msf.metrics.simulated_time_s:.3f}s")

    clusters = sorted(set(labels))
    print(f"cut to 3 clusters -> sizes: "
          f"{[sum(1 for l in labels if l == c) for c in clusters]}")

    # Compare against the planted blobs: every cluster should be pure.
    purity_hits = 0
    for cluster in clusters:
        members = [i for i, l in enumerate(labels) if l == cluster]
        votes = {}
        for member in members:
            votes[truth[member]] = votes.get(truth[member], 0) + 1
        purity_hits += max(votes.values())
    purity = purity_hits / len(points)
    print(f"purity vs planted blobs: {purity:.1%}")
    assert purity > 0.95, "single-linkage should recover separated blobs"


if __name__ == "__main__":
    main()
