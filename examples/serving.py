"""Serving: concurrent mixed queries over one long-lived GraphService.

Run with::

    python examples/serving.py

The paper's production setting is a serving system — the DHT-resident
graph outlives any single query, and many queries are answered against it
concurrently.  This example stands up a :class:`repro.GraphService` (one
thread-safe Session behind a bounded worker pool), registers two graphs by
name, fires a burst of mixed queries (MIS, matching, MSF, PageRank, two
seeds each), and shows:

* every query ran on its own runtime — per-run metrics, no bleed;
* the shared preprocessing was prepared once per (stage, graph,
  seed-class) and served from cache to everyone else;
* the outputs are identical to sequential ``Session.run`` calls.

It then replays the same burst on a :class:`repro.ProcessGraphService` —
the scale-out deployment: worker *processes* instead of threads, queries
routed by graph-fingerprint affinity so each worker's preprocessing cache
stays warm, and the merged stats still add up.  On a multi-core machine
this is where concurrent throughput actually multiplies.
"""

from repro import (
    ClusterConfig,
    GraphService,
    ProcessGraphService,
    Session,
    barabasi_albert_graph,
)
from repro.graph import erdos_renyi_gnm


def main():
    graphs = {
        "social": barabasi_albert_graph(400, attach=3, seed=7),
        "mesh": erdos_renyi_gnm(300, 900, seed=11),
    }
    config = ClusterConfig(num_machines=10, threads_per_machine=72)

    with GraphService(config, workers=4) as service:
        for name, graph in graphs.items():
            handle = service.load(name, graph)
            print(f"loaded {name!r}: {handle.num_vertices} vertices, "
                  f"{handle.num_edges} edges "
                  f"(fingerprint {handle.fingerprint[:12]}...)")

        # A burst of 24 mixed queries, submitted before any completes.
        queries = [
            (algorithm, name, seed)
            for algorithm in ("mis", "matching", "msf", "pagerank")
            for name in graphs
            for seed in (1, 2, 3)
        ]
        pending = [
            (query, service.submit(query[0], query[1], seed=query[2]))
            for query in queries
        ]
        print(f"\nsubmitted {len(pending)} queries to "
              f"{service.stats()['workers']} workers...\n")

        print(f"{'algorithm':<10} {'graph':<7} {'seed':>4} "
              f"{'shuffles':>8} {'reused':>6}  result")
        for (algorithm, name, seed), future in pending:
            result = future.result(timeout=600)
            headline = result.description.splitlines()[0]
            print(f"{algorithm:<10} {name:<7} {seed:>4} "
                  f"{result.metrics['shuffles']:>8} "
                  f"{str(result.preprocessing_reused):>6}  {headline}")

        stats = service.stats()
        print(f"\nservice stats: {stats['runs']} runs, "
              f"{stats['preprocessing_hits']} preprocessing hits / "
              f"{stats['preprocessing_misses']} misses, "
              f"{stats['shuffles_saved']} shuffles saved, "
              f"{stats['cache_bytes']:,} cached bytes")
        assert stats["failed"] == 0
        assert stats["preprocessing_hits"] >= len(graphs)

        # Served answers are identical to sequential Session runs.
        check = Session(config)
        sequential = check.run("mis", graphs["social"], seed=1)
        served = service.query("mis", "social", seed=1, timeout=600)
        assert (served.output.independent_set
                == sequential.output.independent_set)
        print("served outputs identical to sequential Session runs ✓")

    # -- scale out: the same burst on worker processes ---------------------
    with ProcessGraphService(config, processes=2) as scaled:
        for name, graph in graphs.items():
            scaled.load(name, graph)
        pending = [scaled.submit(q[0], q[1], seed=q[2]) for q in queries]
        for future in pending:
            future.result(timeout=600)
        stats = scaled.stats()
        per_worker = ", ".join(
            f"worker {row['worker']} (pid {row['pid']}): {row['runs']} runs"
            for row in stats["per_worker"])
        print(f"\nprocess pool: {stats['runs']} runs on "
              f"{stats['processes']} processes — {per_worker}")
        print(f"affinity routed {stats['affinity_routed']} repeats to warm "
              f"caches, shipped {stats['graphs_shipped']} graph copies, "
              f"{stats['rebalances']} hot-queue rebalances")
        assert stats["failed"] == 0
        served = scaled.query("mis", "social", seed=1, timeout=600)
        assert (served.output.independent_set
                == sequential.output.independent_set)
        print("process-pool outputs identical to sequential runs ✓")


if __name__ == "__main__":
    main()
