"""Content-stable graph fingerprints.

The preprocessing cache must key on *what the graph is*, not on where it
happens to live in memory: ``id(graph)`` keys break as soon as a caller
mutates a graph in place (a count-preserving edge swap leaves ``id`` and
the vertex/edge counts unchanged while invalidating every DHT-resident
artifact), and they silently miss when two equal graphs are materialized
twice — exactly the case a serving system wants to share.

:func:`graph_fingerprint` hashes the graph's type, vertex-id space and its
deterministic edge iteration (weights included for weighted graphs) into a
short hex digest.  It is stable across interpreter runs (no dependence on
``PYTHONHASHSEED``) and across object identities, so equal graphs share
preprocessing and mutated graphs never reuse stale artifacts.
"""

from __future__ import annotations

import hashlib
import threading
import weakref


def graph_fingerprint(graph) -> str:
    """Hex digest identifying a graph by content.

    Works for any object exposing ``num_vertices`` and a deterministic
    ``edges()`` iterator (both :class:`~repro.graph.graph.Graph` and
    :class:`~repro.graph.graph.WeightedGraph` do; weighted edge tuples
    hash their weights too, via exact ``repr``).
    """
    edges = getattr(graph, "edges", None)
    num_vertices = getattr(graph, "num_vertices", None)
    if edges is None or num_vertices is None:
        raise TypeError(
            f"cannot fingerprint {type(graph).__name__}: expected a graph "
            "exposing num_vertices and edges()"
        )
    csr = getattr(graph, "csr", None)
    if csr is not None:
        # Columnar fast path: hash the CSR buffers directly — no per-edge
        # repr, and the snapshot is cached on the graph where the prepare
        # stages reuse it.  A distinct domain tag keeps these digests from
        # ever aliasing the repr-stream digests of csr-less graph types.
        snapshot = csr()
        digest = hashlib.blake2b(digest_size=16)
        digest.update(b"csr|")
        digest.update(type(graph).__name__.encode("utf-8"))
        digest.update(b"|")
        digest.update(str(num_vertices).encode("utf-8"))
        digest.update(b"|")
        digest.update(snapshot.indptr.tobytes())
        digest.update(snapshot.indices.tobytes())
        if snapshot.weights is not None:
            digest.update(b"|w|")
            digest.update(snapshot.weights.tobytes())
        return digest.hexdigest()
    digest = hashlib.blake2b(digest_size=16)
    digest.update(type(graph).__name__.encode("utf-8"))
    digest.update(b"|")
    digest.update(str(num_vertices).encode("utf-8"))
    # Join-and-update in bounded chunks: byte-identical to the per-edge
    # "|" + repr(edge) stream, without a Python-level loop per edge and
    # without materializing one giant buffer for huge graphs.
    chunk: list = []
    append = chunk.append
    for edge in edges():
        append(repr(edge))
        if len(chunk) == 65536:
            digest.update(b"|")
            digest.update("|".join(chunk).encode("utf-8"))
            chunk.clear()
    if chunk:
        digest.update(b"|")
        digest.update("|".join(chunk).encode("utf-8"))
    return digest.hexdigest()


#: how many (version, fingerprint) ancestors a lineage retains — enough to
#: bridge several mutation batches between runs of different algorithms
MAX_LINEAGE = 8


def chain_fingerprint(base: str, ops) -> str:
    """Fingerprint of ``base``'s graph after the journaled edge ``ops``.

    A pure function of (base fingerprint, op sequence): any two consumers
    applying the same batch to graphs with the same fingerprint — e.g. the
    process-pool dispatcher and its workers — derive the same name, in
    O(batch) instead of the O(m) edge re-walk of :func:`graph_fingerprint`.

    The result lives in a separate hash domain (the ``delta|`` tag), so it
    can never alias the content fingerprint of some other graph; the cost
    is that a mutated graph and a content-equal graph fingerprinted from
    scratch get *different* cache keys — a missed sharing opportunity,
    never a stale artifact.
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(b"delta|")
    digest.update(base.encode("utf-8"))
    for op in ops:
        digest.update(b"|")
        digest.update(repr(op).encode("utf-8"))
    return digest.hexdigest()


def advance_lineage(graph, version, fingerprint: str, ancestors):
    """-> (current fingerprint, extended lineage) after graph mutations.

    The one shared implementation of the chain-or-rewalk decision: when
    the graph's journal still covers ``version``, the new name is chained
    from ``fingerprint`` in O(batch); otherwise the edges are re-walked.
    Either way the superseded ``(version, fingerprint)`` joins the
    lineage, capped at :data:`MAX_LINEAGE`.  Used by both
    :class:`FingerprintMemo` and ``GraphHandle`` so the two paths can
    never drift.
    """
    delta_since = getattr(graph, "delta_since", None)
    ops = (delta_since(version)
           if delta_since is not None and version is not None else None)
    lineage = (tuple(ancestors) + ((version, fingerprint),))[-MAX_LINEAGE:]
    if ops:
        return chain_fingerprint(fingerprint, ops), lineage
    return graph_fingerprint(graph), lineage


class FingerprintMemo:
    """A version-checked, weakly-keyed :func:`graph_fingerprint` memo.

    Repository graph classes bump ``content_version`` on every mutation,
    so their fingerprint only needs recomputing when the version moved —
    and when the graph's edge-delta journal still covers the memoized
    version, it is *chain-updated* (:func:`chain_fingerprint`) in O(batch)
    instead of re-walked.  Each entry also remembers up to
    :data:`MAX_LINEAGE` ancestor ``(version, fingerprint)`` pairs — the
    cache lineage the Session's incremental preprocessing walks.  Objects
    without a ``content_version`` are re-walked every call, as a plain
    :func:`graph_fingerprint` would.  Weak keying means the memo never
    extends a graph's lifetime.  Thread-safe; shared by
    :class:`~repro.api.session.Session` and the serving dispatchers.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._memo = weakref.WeakKeyDictionary()

    def fingerprint(self, graph) -> str:
        return self.resolve(graph)[0]

    def resolve(self, graph):
        """-> (fingerprint, ancestors) — ancestors oldest-first.

        Each ancestor is a ``(content_version, fingerprint)`` this graph
        passed through since the memo first saw it; the current version is
        never included.
        """
        version = getattr(graph, "content_version", None)
        if version is None:
            return graph_fingerprint(graph), ()
        with self._lock:
            memo = self._memo.get(graph)
        if memo is not None:
            seen_version, seen_fp, ancestors = memo
            if seen_version == version:
                return seen_fp, ancestors
            fingerprint, lineage = advance_lineage(
                graph, seen_version, seen_fp, ancestors)
        else:
            fingerprint, lineage = graph_fingerprint(graph), ()
        with self._lock:
            self._memo[graph] = (version, fingerprint, lineage)
        return fingerprint, lineage
