"""Core graph data structures.

Vertices are dense integers ``0..n-1``.  Both classes store an adjacency map
per vertex; :class:`WeightedGraph` maps each neighbor to the edge weight.
Insertion order is deterministic, and all algorithms in the repository that
depend on ordering sort explicitly, so results are reproducible across runs.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

EdgeTuple = Tuple[int, int]
WeightedEdgeTuple = Tuple[int, int, float]


def edge_key(u: int, v: int) -> EdgeTuple:
    """Canonical undirected edge identifier ``(min(u, v), max(u, v))``."""
    if u <= v:
        return (u, v)
    return (v, u)


class Graph:
    """An undirected, unweighted graph over vertices ``0..n-1``.

    The representation is an adjacency set per vertex.  Self loops are
    rejected; parallel edges collapse.  ``num_vertices`` counts the vertex-id
    space, including isolated vertices.
    """

    def __init__(self, num_vertices: int = 0):
        if num_vertices < 0:
            raise ValueError("num_vertices must be non-negative")
        self._adj: List[set] = [set() for _ in range(num_vertices)]
        self._num_edges = 0
        #: bumped by every mutator; a cheap staleness signal that lets
        #: consumers (e.g. the Session fingerprint memo) skip re-walking
        #: an unchanged graph
        self.content_version = 0

    # -- construction ------------------------------------------------------

    @classmethod
    def from_edges(cls, num_vertices: int, edges: Iterable[EdgeTuple]) -> "Graph":
        """Build a graph from an iterable of ``(u, v)`` pairs."""
        graph = cls(num_vertices)
        for u, v in edges:
            graph.add_edge(u, v)
        return graph

    def add_vertex(self) -> int:
        """Append a fresh vertex and return its id."""
        self.content_version += 1
        self._adj.append(set())
        return len(self._adj) - 1

    def add_edge(self, u: int, v: int) -> bool:
        """Add undirected edge ``{u, v}``; returns False if it already existed."""
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise ValueError(f"self loop on vertex {u} is not allowed")
        if v in self._adj[u]:
            return False
        self.content_version += 1
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._num_edges += 1
        return True

    def remove_edge(self, u: int, v: int) -> None:
        """Remove undirected edge ``{u, v}``; raises KeyError if absent."""
        self._adj[u].remove(v)
        self._adj[v].remove(u)
        self._num_edges -= 1
        self.content_version += 1

    # -- queries -----------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def has_edge(self, u: int, v: int) -> bool:
        if not (0 <= u < len(self._adj)):
            return False
        return v in self._adj[u]

    def degree(self, v: int) -> int:
        return len(self._adj[v])

    def max_degree(self) -> int:
        if not self._adj:
            return 0
        return max(len(neighbors) for neighbors in self._adj)

    def neighbors(self, v: int) -> Tuple[int, ...]:
        """Neighbors of ``v`` in sorted order (deterministic)."""
        return tuple(sorted(self._adj[v]))

    def vertices(self) -> range:
        return range(len(self._adj))

    def edges(self) -> Iterator[EdgeTuple]:
        """Iterate undirected edges once each, as ``(u, v)`` with ``u < v``."""
        for u, neighbors in enumerate(self._adj):
            for v in sorted(neighbors):
                if u < v:
                    yield (u, v)

    def subgraph(self, vertices: Sequence[int]) -> Tuple["Graph", Dict[int, int]]:
        """Induced subgraph on ``vertices``; returns (graph, old->new id map)."""
        ordered = sorted(set(vertices))
        relabel = {old: new for new, old in enumerate(ordered)}
        sub = Graph(len(ordered))
        for old in ordered:
            for neighbor in self._adj[old]:
                if neighbor in relabel and old < neighbor:
                    sub.add_edge(relabel[old], relabel[neighbor])
        return sub, relabel

    def copy(self) -> "Graph":
        clone = Graph(self.num_vertices)
        clone._adj = [set(neighbors) for neighbors in self._adj]
        clone._num_edges = self._num_edges
        return clone

    def __repr__(self) -> str:
        return f"Graph(n={self.num_vertices}, m={self.num_edges})"

    def _check_vertex(self, v: int) -> None:
        if not (0 <= v < len(self._adj)):
            raise IndexError(f"vertex {v} out of range [0, {len(self._adj)})")


class WeightedGraph:
    """An undirected graph with one float weight per edge.

    Edge weights need not be distinct: every ordering-sensitive consumer uses
    :meth:`weight_order_key`, a strict total order that breaks ties by the
    canonical endpoint pair.  Under this order the minimum spanning forest is
    unique, which Section 3 of the paper assumes throughout.
    """

    def __init__(self, num_vertices: int = 0):
        if num_vertices < 0:
            raise ValueError("num_vertices must be non-negative")
        self._adj: List[Dict[int, float]] = [dict() for _ in range(num_vertices)]
        self._num_edges = 0
        #: see :attr:`Graph.content_version`
        self.content_version = 0

    # -- construction ------------------------------------------------------

    @classmethod
    def from_edges(
        cls, num_vertices: int, edges: Iterable[WeightedEdgeTuple]
    ) -> "WeightedGraph":
        graph = cls(num_vertices)
        for u, v, w in edges:
            graph.add_edge(u, v, w)
        return graph

    @classmethod
    def from_graph(cls, graph: Graph, weight_fn=None) -> "WeightedGraph":
        """Lift an unweighted graph; ``weight_fn(u, v) -> float`` (default 1)."""
        weighted = cls(graph.num_vertices)
        for u, v in graph.edges():
            weight = 1.0 if weight_fn is None else weight_fn(u, v)
            weighted.add_edge(u, v, weight)
        return weighted

    def add_vertex(self) -> int:
        self.content_version += 1
        self._adj.append(dict())
        return len(self._adj) - 1

    def add_edge(self, u: int, v: int, weight: float) -> bool:
        """Add edge ``{u, v}``; on a duplicate, keeps the smaller weight."""
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise ValueError(f"self loop on vertex {u} is not allowed")
        existing = self._adj[u].get(v)
        if existing is not None:
            if weight < existing:
                self.content_version += 1
                self._adj[u][v] = weight
                self._adj[v][u] = weight
            return False
        self.content_version += 1
        self._adj[u][v] = weight
        self._adj[v][u] = weight
        self._num_edges += 1
        return True

    # -- queries -----------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def has_edge(self, u: int, v: int) -> bool:
        if not (0 <= u < len(self._adj)):
            return False
        return v in self._adj[u]

    def weight(self, u: int, v: int) -> float:
        return self._adj[u][v]

    def degree(self, v: int) -> int:
        return len(self._adj[v])

    def max_degree(self) -> int:
        if not self._adj:
            return 0
        return max(len(neighbors) for neighbors in self._adj)

    def neighbors(self, v: int) -> Tuple[int, ...]:
        return tuple(sorted(self._adj[v]))

    def neighbor_items(self, v: int) -> List[Tuple[int, float]]:
        """``(neighbor, weight)`` pairs sorted by the edge total order."""
        items = [(w, u) for u, w in self._adj[v].items()]
        items.sort(key=lambda pair: (pair[0],) + edge_key(v, pair[1]))
        return [(u, w) for w, u in items]

    def vertices(self) -> range:
        return range(len(self._adj))

    def edges(self) -> Iterator[WeightedEdgeTuple]:
        for u, neighbors in enumerate(self._adj):
            for v in sorted(neighbors):
                if u < v:
                    yield (u, v, neighbors[v])

    def weight_order_key(self, u: int, v: int) -> Tuple[float, int, int]:
        """Strict total order on edges: weight, then canonical endpoints."""
        return (self._adj[u][v],) + edge_key(u, v)

    def total_weight(self) -> float:
        return sum(w for _, _, w in self.edges())

    def unweighted(self) -> Graph:
        """Forget the weights."""
        graph = Graph(self.num_vertices)
        for u, v, _ in self.edges():
            graph.add_edge(u, v)
        return graph

    def subgraph_edges(
        self, edges: Iterable[EdgeTuple]
    ) -> "WeightedGraph":
        """Same vertex set, keeping only the given edges (weights copied)."""
        sub = WeightedGraph(self.num_vertices)
        for u, v in edges:
            sub.add_edge(u, v, self._adj[u][v])
        return sub

    def copy(self) -> "WeightedGraph":
        clone = WeightedGraph(self.num_vertices)
        clone._adj = [dict(neighbors) for neighbors in self._adj]
        clone._num_edges = self._num_edges
        return clone

    def __repr__(self) -> str:
        return f"WeightedGraph(n={self.num_vertices}, m={self.num_edges})"

    def _check_vertex(self, v: int) -> None:
        if not (0 <= v < len(self._adj)):
            raise IndexError(f"vertex {v} out of range [0, {len(self._adj)})")
