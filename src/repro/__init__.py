"""repro — AMPC graph algorithms in constant adaptive rounds.

A faithful Python reproduction of Behnezhad, Dhulipala, Esfandiari, Łącki,
Mirrokni, Schudy: "Parallel Graph Algorithms in Constant Adaptive Rounds:
Theory meets Practice" (VLDB 2020), including the AMPC/MPC cluster
simulator, the distributed hash table, the dataflow engine, every AMPC
algorithm of the paper, every MPC baseline it compares against, and the
benchmark harness for its tables and figures.

Top-level convenience re-exports cover the common path::

    from repro import ClusterConfig, Session, barabasi_albert_graph

    graph = barabasi_albert_graph(500, attach=3, seed=7)
    session = Session(ClusterConfig(num_machines=10))
    result = session.run("mis", graph, seed=1)
    print(result.description, result.metrics["shuffles"])

The legacy one-shot entry points (``ampc_mis`` and friends) remain
available and are what the Session dispatches to.

Deeper layers live in the subpackages: :mod:`repro.graph`,
:mod:`repro.trees`, :mod:`repro.sequential`, :mod:`repro.dataflow`,
:mod:`repro.ampc`, :mod:`repro.mpc`, :mod:`repro.core`,
:mod:`repro.baselines`, :mod:`repro.analysis`.
"""

__version__ = "1.0.0"

_EXPORTS = {
    # graphs
    "Graph": "repro.graph.graph",
    "WeightedGraph": "repro.graph.graph",
    "barabasi_albert_graph": "repro.graph.generators",
    "cycle_graph": "repro.graph.generators",
    "two_cycles": "repro.graph.generators",
    "erdos_renyi_gnm": "repro.graph.generators",
    "degree_weighted": "repro.graph.generators",
    # the simulated environment
    "ClusterConfig": "repro.ampc.cluster",
    "CostModel": "repro.ampc.cost_model",
    "FaultPlan": "repro.ampc.faults",
    "AMPCRuntime": "repro.ampc.runtime",
    # the unified Session/registry API
    "Session": "repro.api.session",
    "GraphHandle": "repro.api.session",
    "RunResult": "repro.api.result",
    "algorithm_names": "repro.api",
    "algorithm_specs": "repro.api",
    "graph_fingerprint": "repro.api.fingerprint",
    # the serving layer
    "GraphService": "repro.serve.service",
    "ProcessGraphService": "repro.serve.procpool",
    # the paper's algorithms
    "ampc_mis": "repro.core.mis",
    "ampc_maximal_matching": "repro.core.matching",
    "ampc_matching_phases": "repro.core.matching",
    "ampc_msf": "repro.core.msf",
    "ampc_msf_theory": "repro.core.msf",
    "kkt_msf": "repro.core.kkt",
    "find_f_light_edges": "repro.core.kkt",
    "ampc_connected_components": "repro.core.connectivity",
    "ampc_forest_connectivity": "repro.core.connectivity",
    "ampc_one_vs_two_cycle": "repro.core.two_cycle",
    "approximate_max_weight_matching": "repro.core.matching_derived",
    "approximate_maximum_matching": "repro.core.matching_derived",
    "approximate_vertex_cover": "repro.core.matching_derived",
    "ampc_random_walks": "repro.core.random_walks",
    "ampc_pagerank": "repro.core.random_walks",
    # the MPC baselines
    "mpc_rootset_mis": "repro.baselines.rootset_mis",
    "mpc_rootset_matching": "repro.baselines.rootset_matching",
    "mpc_boruvka_msf": "repro.baselines.boruvka_msf",
    "mpc_local_contraction_cc": "repro.baselines.local_contraction_cc",
}

__all__ = sorted(_EXPORTS) + ["__version__"]


def __getattr__(name):
    if name in _EXPORTS:
        import importlib

        module = importlib.import_module(_EXPORTS[name])
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return __all__
