"""Heavy-light decomposition with maximum-edge-weight path queries.

Algorithm 5 (Appendix B) classifies every edge of a rooted tree as heavy
(to the largest-subtree child) or light, decomposes the tree into heavy
paths, and precomputes an RMQ per heavy path so that the maximum edge weight
on any vertex-to-ancestor path is answered by touching O(log n) path
segments (Lemma B.1).  This class packages exactly that machinery.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.trees.euler_tour import RootedForest
from repro.trees.lca import LCAIndex
from repro.trees.rmq import RangeMax

NEG_INF = float("-inf")


class HeavyLightDecomposition:
    """Heavy paths + per-path RangeMax over parent-edge weights.

    ``weight_to_parent(v)`` must return the weight of the edge from ``v`` to
    its parent; it is never called on roots.  Weights may be any totally
    ordered values (e.g. the (weight, endpoint, endpoint) keys Algorithm 5
    compares); pass matching ``neg_infinity`` / ``pos_infinity`` sentinels
    when they are not plain floats.
    """

    def __init__(self, forest: RootedForest,
                 weight_to_parent: Callable[[int], float],
                 neg_infinity=NEG_INF,
                 pos_infinity=float("inf")):
        self.forest = forest
        self._neg_infinity = neg_infinity
        self._pos_infinity = pos_infinity
        n = forest.num_vertices
        self._subtree_size = self._compute_subtree_sizes()
        #: id of the heavy path a vertex belongs to (the path's top vertex)
        self.path_head: List[int] = [-1] * n
        #: position of the vertex inside its heavy path (0 = head)
        self.path_position: List[int] = [-1] * n
        #: vertices of each heavy path, head first, keyed by head vertex
        self._path_vertices = {}
        self._assign_heavy_paths()
        # Per-path RangeMax over weight(path[k] -> parent(path[k])).
        # Position 0 (the head) stores the head's *light* parent edge, which
        # lies just above the path; queries that should exclude it use
        # position ranges starting at 1.
        self._path_rmq = {}
        for head, vertices in self._path_vertices.items():
            weights = [
                weight_to_parent(v) if forest.parent[v] != -1
                else self._neg_infinity
                for v in vertices
            ]
            self._path_rmq[head] = RangeMax(weights)

    # -- construction ------------------------------------------------------

    def _compute_subtree_sizes(self) -> List[int]:
        forest = self.forest
        size = [1] * forest.num_vertices
        # Children are known, so process vertices in decreasing level order.
        by_level = sorted(
            range(forest.num_vertices), key=lambda v: -forest.level[v]
        )
        for v in by_level:
            parent = forest.parent[v]
            if parent != -1:
                size[parent] += size[v]
        return size

    def _heavy_child(self, v: int) -> Optional[int]:
        children = self.forest.children[v]
        if not children:
            return None
        # Largest subtree wins; ties broken by smaller vertex id.
        return max(children, key=lambda c: (self._subtree_size[c], -c))

    def _assign_heavy_paths(self) -> None:
        forest = self.forest
        for root in forest.roots:
            stack = [root]
            while stack:
                head = stack.pop()
                # Walk the heavy chain starting at `head`.
                path = []
                v: Optional[int] = head
                while v is not None:
                    self.path_head[v] = head
                    self.path_position[v] = len(path)
                    path.append(v)
                    heavy = self._heavy_child(v)
                    for child in forest.children[v]:
                        if child != heavy:
                            stack.append(child)
                    v = heavy
                self._path_vertices[head] = path

    # -- queries -----------------------------------------------------------

    def heavy_paths(self) -> List[List[int]]:
        """All heavy paths (each a list of vertices, head first)."""
        return [list(path) for path in self._path_vertices.values()]

    def num_light_edges_above(self, v: int) -> int:
        """Number of light edges on the path from ``v`` to its root."""
        count = 0
        forest = self.forest
        while forest.parent[self.path_head[v]] != -1:
            count += 1
            v = forest.parent[self.path_head[v]]
        return count

    def max_edge_to_ancestor(self, v: int, ancestor: int) -> float:
        """Maximum edge weight on the tree path from ``v`` up to ``ancestor``.

        ``ancestor`` must be an ancestor of ``v`` (or ``v`` itself, giving
        ``-inf`` for the empty path).  Runs in O(log n) RMQ probes.
        """
        forest = self.forest
        best = self._neg_infinity
        while self.path_head[v] != self.path_head[ancestor]:
            head = self.path_head[v]
            rmq = self._path_rmq[head]
            # Segment: edges from v down-path to head, plus head's light
            # parent edge (positions 0..pos[v] include both).
            best = max(best, rmq.query(0, self.path_position[v]))
            v = forest.parent[head]
        if v != ancestor:
            rmq = self._path_rmq[self.path_head[v]]
            lo = self.path_position[ancestor] + 1
            hi = self.path_position[v]
            best = max(best, rmq.query(lo, hi))
        return best

    def max_edge_on_path(self, u: int, v: int, lca_index: LCAIndex) -> float:
        """Maximum edge weight on the tree path between u and v.

        Returns ``+inf`` when u and v lie in different trees, matching the
        convention of Definition 3.7 (``w_F(x, y) = infinity`` across
        components, so every cross-component edge is F-light).
        """
        ancestor = lca_index.lca(u, v)
        if ancestor is None:
            return self._pos_infinity
        return max(
            self.max_edge_to_ancestor(u, ancestor),
            self.max_edge_to_ancestor(v, ancestor),
        )
