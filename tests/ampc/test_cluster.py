"""Tests for the simulated cluster's partitioning and timing."""

import pytest

from repro.ampc import Cluster, ClusterConfig, CostModel, FaultPlan
from repro.ampc.cluster import MachineWork


class TestClusterConfig:
    def test_defaults(self):
        config = ClusterConfig()
        assert config.num_machines >= 1
        assert config.caching and config.multithreading

    def test_invalid_shapes_rejected(self):
        with pytest.raises(ValueError):
            ClusterConfig(num_machines=0)
        with pytest.raises(ValueError):
            ClusterConfig(threads_per_machine=0)

    def test_with_overrides(self):
        config = ClusterConfig(num_machines=7).with_overrides(caching=False)
        assert config.num_machines == 7
        assert not config.caching


class TestPartitioning:
    def test_round_robin_balance(self):
        cluster = Cluster(ClusterConfig(num_machines=4))
        parts = cluster.partition(list(range(10)))
        assert [len(p) for p in parts] == [3, 3, 2, 2]

    def test_key_partition_consistent_with_machine_for(self):
        cluster = Cluster(ClusterConfig(num_machines=4))
        parts = cluster.partition(list(range(100)), key_fn=lambda x: x)
        for machine_id, part in enumerate(parts):
            for item in part:
                assert cluster.machine_for(item) == machine_id


class TestTiming:
    def test_multithreading_hides_latency(self):
        slow = Cluster(ClusterConfig(num_machines=1, multithreading=False))
        fast = Cluster(ClusterConfig(num_machines=1, multithreading=True,
                                     threads_per_machine=72))
        work = MachineWork(kv_reads=10_000)
        assert fast.machine_stage_time(work) < slow.machine_stage_time(work)

    def test_stage_time_is_critical_path(self):
        cluster = Cluster(ClusterConfig(num_machines=2))
        light = MachineWork(compute_ops=10)
        heavy = MachineWork(compute_ops=10_000_000)
        stage_time = cluster.charge_stage([light, heavy])
        assert stage_time == pytest.approx(
            cluster.machine_stage_time(heavy)
        )

    def test_bandwidth_bound_kicks_in(self):
        # Few reads but enormous bytes: the bandwidth term must dominate.
        cluster = Cluster(ClusterConfig(num_machines=1))
        work = MachineWork(kv_reads=1, kv_read_bytes=10**12)
        model = cluster.config.cost_model
        expected_floor = work.kv_read_bytes / model.nic_bandwidth_bytes_per_s
        assert cluster.machine_stage_time(work) >= expected_floor

    def test_aggregate_bandwidth_shared_across_machines(self):
        few = Cluster(ClusterConfig(num_machines=2))
        many = Cluster(ClusterConfig(num_machines=100))
        work = MachineWork(kv_read_bytes=10**10)
        # With 100 machines each gets a smaller slice of the aggregate.
        assert many.machine_stage_time(work) > few.machine_stage_time(work)

    def test_shuffle_charges_setup_and_bytes(self):
        cluster = Cluster(ClusterConfig(num_machines=10))
        time = cluster.charge_shuffle(0)
        model = cluster.config.cost_model
        assert time == pytest.approx(model.shuffle_setup_s)
        assert cluster.metrics.shuffles == 1
        big_time = cluster.charge_shuffle(10**10)
        assert big_time > model.shuffle_setup_s
        assert cluster.metrics.shuffle_bytes == 10**10

    def test_max_machine_queries_tracked(self):
        cluster = Cluster(ClusterConfig(num_machines=2))
        cluster.charge_stage([MachineWork(kv_reads=5), MachineWork(kv_reads=9)])
        assert cluster.metrics.max_machine_queries_per_stage == 9


class TestFaults:
    def test_no_faults_by_default(self):
        cluster = Cluster(ClusterConfig(num_machines=4))
        cluster.charge_stage([MachineWork(compute_ops=100)] * 4)
        assert cluster.metrics.preemptions == 0

    def test_preemptions_add_time_and_are_counted(self):
        plan = FaultPlan(preempt_probability=0.5, seed=1)
        faulty = Cluster(ClusterConfig(num_machines=8), fault_plan=plan)
        clean = Cluster(ClusterConfig(num_machines=8))
        works = [MachineWork(compute_ops=10**7) for _ in range(8)]
        faulty_time = faulty.charge_stage(works)
        clean_time = clean.charge_stage(works)
        assert faulty.metrics.preemptions > 0
        assert faulty_time >= clean_time

    def test_fault_plan_deterministic(self):
        times = []
        for _ in range(2):
            plan = FaultPlan(preempt_probability=0.3, seed=42)
            cluster = Cluster(ClusterConfig(num_machines=8), fault_plan=plan)
            works = [MachineWork(compute_ops=10**6) for _ in range(8)]
            times.append(cluster.charge_stage(works))
        assert times[0] == times[1]

    def test_fault_plan_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(preempt_probability=1.5)

    def test_retry_bound(self):
        plan = FaultPlan(preempt_probability=0.99, seed=0,
                         max_retries_per_stage=3)
        assert plan.executions_for(0, 0) <= 4
