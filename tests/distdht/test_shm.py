"""Shared-memory backing store: segments, locators, cross-process reads."""

import multiprocessing
import pickle

import pytest

from repro.distdht.backing import fetch
from repro.distdht.shm import SharedMemoryBackingStore


@pytest.fixture
def store():
    with SharedMemoryBackingStore(segment_bytes=1024) as shm_store:
        yield shm_store


class TestBasicOps:
    def test_put_get_overwrite_delete(self, store):
        store.put(b"k", b"one")
        assert store.get(b"k") == b"one"
        store.put(b"k", b"two-longer")
        assert store.get(b"k") == b"two-longer"
        assert store.delete(b"k")
        assert store.get(b"k") is None
        assert not store.delete(b"k")

    def test_scan_and_delete_prefix(self, store):
        store.put_many([(b"a|1", b"x"), (b"a|2", b"y"), (b"b|1", b"z")])
        assert sorted(store.scan(b"a|")) == [b"a|1", b"a|2"]
        assert store.delete_prefix(b"a|") == 2
        assert store.get(b"b|1") == b"z"

    def test_segments_grow_geometrically(self, store):
        # 1 KiB first segment; pushing ~8 KiB of records must add
        # segments without losing any earlier record
        for index in range(32):
            store.put(f"k{index}".encode(), bytes(256))
        stats = store.stats()
        assert stats["segments"] > 1
        assert all(store.get(f"k{index}".encode()) == bytes(256)
                   for index in range(32))

    def test_record_larger_than_segment_still_fits(self, store):
        big = bytes(8192)  # 8x the configured segment size
        store.put(b"big", big)
        assert store.get(b"big") == big

    def test_overwrites_account_dead_bytes(self, store):
        store.put(b"k", bytes(100))
        store.put(b"k", bytes(100))
        stats = store.stats()
        assert stats["dead_bytes"] == 100
        assert stats["payload_bytes"] == 100

    def test_closed_store_rejects_writes(self):
        store = SharedMemoryBackingStore()
        store.close()
        with pytest.raises(ValueError, match="closed"):
            store.put(b"k", b"v")
        store.close()  # idempotent


class TestLocators:
    def test_share_and_fetch_same_process(self, store):
        store.put(b"k", b"payload")
        locator = store.share(b"k")
        assert locator[0] == "shm"
        assert fetch(locator) == b"payload"

    def test_share_missing_key_raises(self, store):
        with pytest.raises(KeyError):
            store.share(b"nope")

    def test_stale_locator_reads_old_record_after_overwrite(self, store):
        # overwrites append and move the index; a locator held across an
        # overwrite still addresses consistent (old) bytes, never garbage
        store.put(b"k", b"old-bytes")
        locator = store.share(b"k")
        store.put(b"k", b"new-bytes")
        assert fetch(locator) == b"old-bytes"
        assert fetch(store.share(b"k")) == b"new-bytes"

    def test_locator_is_small_and_picklable(self, store):
        store.put(b"k", bytes(4096))
        locator = store.share(b"k")
        assert len(pickle.dumps(locator)) < 128


def _child_fetch(locator, queue):
    from repro.distdht.backing import fetch as child_fetch
    try:
        queue.put(("ok", child_fetch(locator)))
    except Exception as error:  # noqa: BLE001 - report to the parent
        queue.put(("error", repr(error)))


class TestCrossProcess:
    def test_child_process_reads_via_locator(self, store):
        store.put(b"k", b"cross-process-payload")
        locator = store.share(b"k")
        queue = multiprocessing.Queue()
        child = multiprocessing.Process(target=_child_fetch,
                                        args=(locator, queue))
        child.start()
        try:
            outcome, payload = queue.get(timeout=30)
        finally:
            child.join(timeout=30)
        assert outcome == "ok", payload
        assert payload == b"cross-process-payload"
        # the creator still owns the segment: reads keep working after
        # the reader process exited (it must not have unlinked anything)
        assert store.get(b"k") == b"cross-process-payload"
        assert fetch(store.share(b"k")) == b"cross-process-payload"
