"""The paper's MPC baselines.

Each baseline is a faithful dataflow implementation of the algorithm the
paper compares against:

* :func:`mpc_rootset_mis` — the rootset MIS of Figure 2 (Blelloch et al.,
  O(log n) rounds per Fischer-Noever), 2 shuffles per phase.
* :func:`mpc_rootset_matching` — the analogous rootset maximal matching.
* :func:`mpc_boruvka_msf` — Boruvka with random red/blue contraction,
  3 shuffles per phase (Section 5.5).
* :func:`mpc_local_contraction_cc` — the local-contraction connectivity of
  Lacki et al., the paper's 1-vs-2-Cycle baseline (Section 5.6).

Every baseline switches to an in-memory solver below a size threshold,
exactly as the paper's implementations do (s = 5 * 10^7 on the production
testbed; proportionally scaled here).
"""

_EXPORTS = {
    "mpc_rootset_mis": "repro.baselines.rootset_mis",
    "mpc_rootset_matching": "repro.baselines.rootset_matching",
    "mpc_boruvka_msf": "repro.baselines.boruvka_msf",
    "mpc_local_contraction_cc": "repro.baselines.local_contraction_cc",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name):
    if name in _EXPORTS:
        import importlib

        module = importlib.import_module(_EXPORTS[name])
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return __all__
