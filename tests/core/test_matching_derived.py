"""Tests for Corollary 4.1: weighted matching, vertex cover, augmentation."""

import itertools

import pytest

from repro.ampc import ClusterConfig
from repro.core import (
    approximate_max_weight_matching,
    approximate_maximum_matching,
    approximate_vertex_cover,
)
from repro.graph import Graph, WeightedGraph, cycle_graph, path_graph, star_graph
from repro.graph.generators import erdos_renyi_gnm, random_weighted
from repro.sequential import is_matching

CONFIG = ClusterConfig(num_machines=4)


def brute_force_max_weight(graph: WeightedGraph) -> float:
    """Exact maximum weight matching by enumeration (tiny graphs only)."""
    edges = list(graph.edges())
    best = 0.0
    for size in range(len(edges) + 1):
        for subset in itertools.combinations(edges, size):
            used = set()
            ok = True
            weight = 0.0
            for u, v, w in subset:
                if u in used or v in used:
                    ok = False
                    break
                used.add(u)
                used.add(v)
                weight += w
            if ok:
                best = max(best, weight)
    return best


def brute_force_max_cardinality(graph: Graph) -> int:
    edges = list(graph.edges())
    best = 0
    for size in range(len(edges), 0, -1):
        for subset in itertools.combinations(edges, size):
            used = set()
            ok = True
            for u, v in subset:
                if u in used or v in used:
                    ok = False
                    break
                used.add(u)
                used.add(v)
            if ok:
                return size
    return best


def brute_force_min_vertex_cover(graph: Graph) -> int:
    n = graph.num_vertices
    edges = list(graph.edges())
    for size in range(n + 1):
        for subset in itertools.combinations(range(n), size):
            chosen = set(subset)
            if all(u in chosen or v in chosen for u, v in edges):
                return size
    return n


class TestVertexCover:
    def test_covers_all_edges(self):
        graph = erdos_renyi_gnm(30, 60, seed=1)
        result = approximate_vertex_cover(graph, seed=1, config=CONFIG)
        for u, v in graph.edges():
            assert u in result.cover or v in result.cover

    def test_within_factor_two(self):
        for seed in range(3):
            graph = erdos_renyi_gnm(10, 18, seed=seed)
            result = approximate_vertex_cover(graph, seed=seed, config=CONFIG)
            optimal = brute_force_min_vertex_cover(graph)
            assert len(result.cover) <= 2 * optimal

    def test_star_cover(self):
        result = approximate_vertex_cover(star_graph(8), seed=0, config=CONFIG)
        assert len(result.cover) == 2  # one matched edge -> both endpoints


class TestWeightedMatching:
    def test_valid_matching(self):
        graph = random_weighted(erdos_renyi_gnm(30, 70, seed=2), seed=2)
        positive = WeightedGraph(graph.num_vertices)
        for u, v, w in graph.edges():
            positive.add_edge(u, v, w + 0.01)
        result = approximate_max_weight_matching(positive, seed=2,
                                                 config=CONFIG)
        assert is_matching(positive.unweighted(), result.matching)
        assert result.weight > 0

    def test_within_factor_2_plus_eps(self):
        for seed in range(3):
            base = erdos_renyi_gnm(9, 14, seed=seed)
            graph = WeightedGraph(9)
            import random as random_module
            rng = random_module.Random(seed)
            for u, v in base.edges():
                graph.add_edge(u, v, 0.5 + rng.random() * 9.5)
            if graph.num_edges == 0:
                continue
            result = approximate_max_weight_matching(graph, seed=seed,
                                                     config=CONFIG,
                                                     epsilon=0.2)
            optimal = brute_force_max_weight(graph)
            assert result.weight >= optimal / (2 * 1.2) - 1e-9

    def test_prefers_heavy_levels(self):
        # A triangle path where the middle edge is enormous.
        graph = WeightedGraph(4)
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(1, 2, 100.0)
        graph.add_edge(2, 3, 1.0)
        result = approximate_max_weight_matching(graph, seed=0, config=CONFIG)
        assert (1, 2) in result.matching

    def test_rejects_nonpositive_weights(self):
        graph = WeightedGraph(2)
        graph.add_edge(0, 1, -1.0)
        with pytest.raises(ValueError):
            approximate_max_weight_matching(graph, config=CONFIG)

    def test_rejects_bad_epsilon(self):
        graph = WeightedGraph(2)
        graph.add_edge(0, 1, 1.0)
        with pytest.raises(ValueError):
            approximate_max_weight_matching(graph, config=CONFIG, epsilon=0)

    def test_empty(self):
        result = approximate_max_weight_matching(WeightedGraph(3),
                                                 config=CONFIG)
        assert result.matching == set()
        assert result.weight == 0.0


class TestAugmentedMatching:
    def test_still_a_matching(self):
        graph = erdos_renyi_gnm(30, 60, seed=3)
        matching, _ = approximate_maximum_matching(graph, seed=3,
                                                   config=CONFIG,
                                                   augmentation_rounds=2)
        assert is_matching(graph, matching)

    def test_at_least_maximal_size(self):
        from repro.core import ampc_maximal_matching

        graph = erdos_renyi_gnm(30, 70, seed=4)
        base = ampc_maximal_matching(graph, seed=4, config=CONFIG)
        augmented, _ = approximate_maximum_matching(graph, seed=4,
                                                    config=CONFIG)
        assert len(augmented) >= len(base.matching)

    def test_three_halves_on_small_graphs(self):
        for seed in range(4):
            graph = erdos_renyi_gnm(10, 16, seed=seed)
            matching, _ = approximate_maximum_matching(graph, seed=seed,
                                                       config=CONFIG)
            optimal = brute_force_max_cardinality(graph)
            assert 3 * len(matching) >= 2 * optimal

    def test_augmentation_improves_path(self):
        # Path a-b-c-d with the middle edge matched is augmentable.
        graph = path_graph(4)
        for seed in range(8):
            matching, _ = approximate_maximum_matching(graph, seed=seed,
                                                       config=CONFIG)
            assert len(matching) == 2  # always reaches the perfect matching
